package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

func init() { register(extTopology{}) }

// extTopology is an extension experiment: the OBM problem on a torus.
// A torus is vertex-transitive, so the shared-cache latency TC(k) is
// identical on every tile — the imbalance the paper's algorithm fights
// is largely an artifact of the mesh's edges. The residual imbalance
// comes only from the memory-controller distances, which is much
// smaller. The experiment quantifies both the problem shrinking and how
// much the algorithms still matter.
type extTopology struct{}

func (extTopology) ID() string { return "topology" }
func (extTopology) Title() string {
	return "Extension: the OBM problem on a torus (wrap-around links)"
}

// TopologyRow compares one (topology, config) pair.
type TopologyRow struct {
	Topology             string
	Config               string
	TCSpread             float64 // max-min of TC(k)
	RandDev              float64 // random-mapping average dev-APL
	GlobalMax, GlobalDev float64
	SSSMax, SSSDev       float64
}

// TopologyResult is the comparison table.
type TopologyResult struct {
	Rows []TopologyRow
}

func (e extTopology) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1", "C4")
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	msh := mesh.MustNew(8, 8)
	build := func(torus bool) (*model.LatencyModel, error) {
		if torus {
			return model.NewTorus(msh, model.DefaultParams(), model.CornersPlacement(msh))
		}
		return model.New(msh, model.DefaultParams())
	}
	res := &TopologyResult{}
	for _, torus := range []bool{false, true} {
		lm, err := build(torus)
		if err != nil {
			return nil, err
		}
		tcs := lm.TCArray()
		spread := stats.MustMax(tcs) - stats.MustMin(tcs)
		for _, cfg := range cfgs {
			w, err := workload.Config(cfg)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProblem(lm, w)
			if err != nil {
				return nil, err
			}
			row := TopologyRow{Topology: lm.Topology().String(), Config: cfg, TCSpread: spread}
			rng := stats.NewRand(sp.Seed + 61)
			draws := 300
			for i := 0; i < draws; i++ {
				row.RandDev += p.Evaluate(core.RandomMapping(p.N(), rng)).DevAPL
			}
			row.RandDev /= float64(draws)
			_, evG, err := mapEval(ctx, p, mapping.Global{})
			if err != nil {
				return nil, err
			}
			_, evS, err := mapEval(ctx, p, mapping.SortSelectSwap{})
			if err != nil {
				return nil, err
			}
			row.GlobalMax, row.GlobalDev = evG.MaxAPL, evG.DevAPL
			row.SSSMax, row.SSSDev = evS.MaxAPL, evS.DevAPL
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func (r *TopologyResult) table() *Table {
	t := newTable("OBM on mesh vs torus (8x8, corner controllers)",
		"Topology", "Config", "TC spread", "rand dev", "Global max/dev", "SSS max/dev")
	for _, row := range r.Rows {
		t.addRow(row.Topology, row.Config,
			fmt.Sprintf("%.2f", row.TCSpread),
			fmt.Sprintf("%.3f", row.RandDev),
			fmt.Sprintf("%.2f / %.3f", row.GlobalMax, row.GlobalDev),
			fmt.Sprintf("%.2f / %.3f", row.SSSMax, row.SSSDev))
	}
	return t
}

func (r *TopologyResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(on the torus TC(k) is constant — the cache-side imbalance vanishes by\n" +
			" construction and only the memory-controller component remains, so both\n" +
			" the problem and the gains shrink; wrap-around links are how hardware\n" +
			" 'solves' what the paper solves in software on a mesh)\n"))
}

// Render implements Result.
func (r *TopologyResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *TopologyResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *TopologyResult) JSON() ([]byte, error) { return r.doc().JSON() }
