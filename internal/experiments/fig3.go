package experiments

import (
	"context"
	"obm/internal/mesh"
)

func init() { register(fig3{}) }

// fig3 reproduces Figure 3: per-tile average packet latencies on the
// 8x8 mesh for (a) shared-cache traffic and (b) memory-controller
// traffic, rendered as shaded heatmaps plus the raw values.
type fig3 struct{}

func (fig3) ID() string    { return "fig3" }
func (fig3) Title() string { return "Figure 3: packet latencies on an 8x8 mesh network" }

// Fig3Result carries the two per-tile latency fields.
type Fig3Result struct {
	TC, TM [][]float64
}

func (f fig3) Run(ctx context.Context, o Options) (Result, error) {
	lm := paperModel()
	msh := lm.Mesh()
	res := &Fig3Result{
		TC: make([][]float64, msh.Rows()),
		TM: make([][]float64, msh.Rows()),
	}
	for r := 0; r < msh.Rows(); r++ {
		res.TC[r] = make([]float64, msh.Cols())
		res.TM[r] = make([]float64, msh.Cols())
		for c := 0; c < msh.Cols(); c++ {
			t := msh.TileAt(r, c)
			res.TC[r][c] = lm.TC(t)
			res.TM[r][c] = lm.TM(t)
		}
	}
	return res, nil
}

func (r *Fig3Result) doc() *Doc {
	d := newDoc()
	d.renderOnly(&Heatmap{Title: "Figure 3a: L2 cache access latency TC(k) (darker = slower)", Values: r.TC, Unit: "cycles"})
	d.renderOnly(Note("\n"))
	d.renderOnly(&Heatmap{Title: "Figure 3b: memory-controller access latency TM(k) (darker = slower)", Values: r.TM, Unit: "cycles"})
	d.renderOnly(Note("\n(cache latency is lowest in the chip center; memory latency lowest at the corners)\n"))
	t := newTable("", "row", "col", "TC", "TM")
	t.Units = "cycles"
	for row := range r.TC {
		for col := range r.TC[row] {
			t.addRowf("%.4f", row, col, r.TC[row][col], r.TM[row][col])
		}
	}
	d.csvOnly(t)
	return d
}

// Render implements Result.
func (r *Fig3Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Fig3Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Fig3Result) JSON() ([]byte, error) { return r.doc().JSON() }

// tileGridFloats is a helper for examples: it lays out a per-tile value
// function over a mesh as a 2D slice.
func tileGridFloats(msh *mesh.Mesh, f func(mesh.Tile) float64) [][]float64 {
	out := make([][]float64, msh.Rows())
	for r := 0; r < msh.Rows(); r++ {
		out[r] = make([]float64, msh.Cols())
		for c := 0; c < msh.Cols(); c++ {
			out[r][c] = f(msh.TileAt(r, c))
		}
	}
	return out
}
