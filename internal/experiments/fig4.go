package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
)

func init() { register(fig4{}) }

// fig4 reproduces Figure 4: the Global mapper's application-to-tile
// placement on configuration C1, showing the lightest application
// pushed to the worst (corner) tiles.
type fig4 struct{}

func (fig4) ID() string    { return "fig4" }
func (fig4) Title() string { return "Figure 4: Global mapping result of C1" }

// FigMappingResult is shared by fig4 and fig8a: a mapping grid plus the
// per-application APLs behind it.
type FigMappingResult struct {
	Caption string
	Grid    [][]int
	APLs    []float64
	MaxAPL  float64
	GAPL    float64
	Note    string
}

func (f fig4) Run(ctx context.Context, o Options) (Result, error) {
	p, err := problemFor("C1")
	if err != nil {
		return nil, err
	}
	m, ev, err := mapEval(ctx, p, mapping.Global{})
	if err != nil {
		return nil, err
	}
	return &FigMappingResult{
		Caption: "Figure 4: Global mapping results of C1 (cell = application ID, 1 = lightest traffic)",
		Grid:    p.AppGrid(m),
		APLs:    ev.APLs,
		MaxAPL:  ev.MaxAPL,
		GAPL:    ev.GlobalAPL,
		Note:    "the lightest application is pushed to the worst corner tiles",
	}, nil
}

func (r *FigMappingResult) doc() *Doc {
	d := newDoc()
	d.renderOnly(&Grid{Title: r.Caption, Cells: r.Grid})
	for i, apl := range r.APLs {
		d.notef("  app %d APL: %.2f cycles\n", i+1, apl)
	}
	summary := fmt.Sprintf("  max-APL %.2f, g-APL %.2f", r.MaxAPL, r.GAPL)
	if r.Note != "" {
		summary += " — " + r.Note
	}
	d.renderOnly(Note(summary + "\n"))
	t := newTable("", "row", "col", "app")
	for row := range r.Grid {
		for col := range r.Grid[row] {
			t.addRow(fmt.Sprint(row), fmt.Sprint(col), fmt.Sprint(r.Grid[row][col]))
		}
	}
	d.csvOnly(t)
	return d
}

// Render implements Result.
func (r *FigMappingResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *FigMappingResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *FigMappingResult) JSON() ([]byte, error) { return r.doc().JSON() }
