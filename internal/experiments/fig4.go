package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
)

func init() { register(fig4{}) }

// fig4 reproduces Figure 4: the Global mapper's application-to-tile
// placement on configuration C1, showing the lightest application
// pushed to the worst (corner) tiles.
type fig4 struct{}

func (fig4) ID() string    { return "fig4" }
func (fig4) Title() string { return "Figure 4: Global mapping result of C1" }

// FigMappingResult is shared by fig4 and fig8a: a mapping grid plus the
// per-application APLs behind it.
type FigMappingResult struct {
	Caption string
	Grid    [][]int
	APLs    []float64
	MaxAPL  float64
	GAPL    float64
	Note    string
}

func (f fig4) Run(ctx context.Context, o Options) (Result, error) {
	p, err := problemFor("C1")
	if err != nil {
		return nil, err
	}
	m, err := mapping.MapAndCheck(ctx, mapping.Global{}, p)
	if err != nil {
		return nil, err
	}
	ev := p.Evaluate(m)
	return &FigMappingResult{
		Caption: "Figure 4: Global mapping results of C1 (cell = application ID, 1 = lightest traffic)",
		Grid:    p.AppGrid(m),
		APLs:    ev.APLs,
		MaxAPL:  ev.MaxAPL,
		GAPL:    ev.GlobalAPL,
		Note:    "the lightest application is pushed to the worst corner tiles",
	}, nil
}

// Render implements Result.
func (r *FigMappingResult) Render() string {
	s := renderGrid(r.Caption, r.Grid)
	for i, apl := range r.APLs {
		s += fmt.Sprintf("  app %d APL: %.2f cycles\n", i+1, apl)
	}
	s += fmt.Sprintf("  max-APL %.2f, g-APL %.2f", r.MaxAPL, r.GAPL)
	if r.Note != "" {
		s += " — " + r.Note
	}
	return s + "\n"
}

// CSV implements Result.
func (r *FigMappingResult) CSV() string {
	t := newTable("", "row", "col", "app")
	for row := range r.Grid {
		for col := range r.Grid[row] {
			t.addRow(fmt.Sprint(row), fmt.Sprint(col), fmt.Sprint(r.Grid[row][col]))
		}
	}
	return t.CSV()
}
