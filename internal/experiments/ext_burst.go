package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sim"
)

func init() { register(extBurst{}) }

// extBurst is a robustness experiment: the analytic model (and the
// paper) assume smooth traffic, but real applications burst. It
// re-measures the Global-vs-SSS comparison on the flit-level simulator
// under on/off modulated injection and checks the ordering survives the
// extra queuing.
type extBurst struct{}

func (extBurst) ID() string { return "burst" }
func (extBurst) Title() string {
	return "Extension: does the balance conclusion survive bursty traffic?"
}

// BurstRow is one (mapper, burst factor) measurement.
type BurstRow struct {
	Mapper         string
	BurstFactor    float64
	MaxAPL, DevAPL float64
	QueuingPerHop  float64
}

// BurstResult is the sweep.
type BurstResult struct {
	Config string
	Rows   []BurstRow
}

func (e extBurst) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C4") // heaviest rates: burstiness bites hardest
	if err != nil {
		return nil, err
	}
	cfgName := sp.Configs[0]
	p, err := problemFor(cfgName)
	if err != nil {
		return nil, err
	}
	scfg := sim.DefaultRateDrivenConfig()
	scfg.Seed = sp.Seed + 81
	scfg.NocWorkers = o.Workers
	if o.Quick {
		scfg.MeasureCycles = 60_000
	}
	res := &BurstResult{Config: cfgName}
	for _, factor := range []float64{1, 4, 12} {
		for _, m := range []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}} {
			mp, _, err := mapEval(ctx, p, m)
			if err != nil {
				return nil, err
			}
			c := scfg
			c.BurstFactor = factor
			sr, err := sim.RateDriven(ctx, p, mp, c)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BurstRow{
				Mapper: shortName(m), BurstFactor: factor,
				MaxAPL: sr.MaxAPL, DevAPL: sr.DevAPL,
				QueuingPerHop: sr.Net.AvgQueuingPerHop(),
			})
		}
	}
	return res, nil
}

func (r *BurstResult) table() *Table {
	t := newTable(fmt.Sprintf("Measured balance under bursty injection (%s)", r.Config),
		"Burst factor", "Mapper", "max-APL", "dev-APL", "queuing/hop")
	for _, row := range r.Rows {
		t.addRow(fmt.Sprintf("%.0fx", row.BurstFactor), row.Mapper,
			fmt.Sprintf("%.2f", row.MaxAPL),
			fmt.Sprintf("%.3f", row.DevAPL),
			fmt.Sprintf("%.3f", row.QueuingPerHop))
	}
	return t
}

func (r *BurstResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(burstiness raises queuing for everyone; SSS keeps its max-APL and\n" +
			" dev-APL advantage because the imbalance is geometric, not load-borne)\n"))
}

// Render implements Result.
func (r *BurstResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *BurstResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *BurstResult) JSON() ([]byte, error) { return r.doc().JSON() }
