package experiments

import (
	"context"
	"fmt"
	"time"

	"obm/internal/mapping"
	"obm/internal/workload"
)

func init() { register(extAblation{}) }

// extAblation is an extension experiment: the contribution of each
// phase and design choice of sort-select-swap (the studies DESIGN.md
// calls out). Every variant maps all configurations; the table reports
// the average max-APL, dev-APL, and wall time.
type extAblation struct{}

func (extAblation) ID() string { return "ablation" }
func (extAblation) Title() string {
	return "Extension: sort-select-swap phase and design-choice ablations"
}

// AblationRow is one variant's averages.
type AblationRow struct {
	Variant        string
	MaxAPL, DevAPL float64
	GAPL           float64
	Runtime        time.Duration
}

// AblationResult is the whole study.
type AblationResult struct {
	Rows []AblationRow
}

func (a extAblation) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	variants := []mapping.Mapper{
		mapping.SortSelectSwap{},
		mapping.SortSelectSwap{DisableSwap: true},
		mapping.SortSelectSwap{DisableFinalSAM: true},
		mapping.SortSelectSwap{DisableSwap: true, DisableFinalSAM: true},
		mapping.SortSelectSwap{Select: mapping.SelectFirst},
		mapping.SortSelectSwap{Select: mapping.SelectRandom, Seed: sp.Seed + 31},
		mapping.SortSelectSwap{WindowSize: 2},
		mapping.SortSelectSwap{WindowSize: 3},
		mapping.SortSelectSwap{MaxStep: 1},
		mapping.SortSelectSwap{Passes: 5},
		mapping.BalancedGreedy{},
		mapping.ClusterSA{Seed: sp.Seed + 32},
	}
	res := &AblationResult{}
	for _, m := range variants {
		row := AblationRow{Variant: m.Name()}
		start := time.Now()
		for _, cfg := range cfgs {
			p, err := problemFor(cfg)
			if err != nil {
				return nil, err
			}
			// Explicit store bypass: the runtime column must time real
			// mapper work, not cache lookups (test-enforced by
			// TestTimingRunnersBypass).
			_, ev, err := mapEvalUncached(ctx, p, m)
			if err != nil {
				return nil, err
			}
			row.MaxAPL += ev.MaxAPL
			row.DevAPL += ev.DevAPL
			row.GAPL += ev.GlobalAPL
		}
		row.Runtime = time.Since(start) / time.Duration(len(cfgs))
		n := float64(len(cfgs))
		row.MaxAPL /= n
		row.DevAPL /= n
		row.GAPL /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *AblationResult) table() *Table {
	t := newTable("SSS ablations (averages over configurations)",
		"Variant", "max-APL", "dev-APL", "g-APL", "runtime")
	for _, row := range r.Rows {
		t.addRow(row.Variant,
			fmt.Sprintf("%.3f", row.MaxAPL),
			fmt.Sprintf("%.4f", row.DevAPL),
			fmt.Sprintf("%.3f", row.GAPL),
			row.Runtime.Round(10*time.Microsecond).String())
	}
	return t
}

func (r *AblationResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(select-only = coarse tuning; the sliding-window swap phase buys most of\n" +
			" the dev-APL reduction and full step range matters more than window size;\n" +
			" selection strategy within sections is a second-order effect)\n"))
}

// Render implements Result.
func (r *AblationResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *AblationResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *AblationResult) JSON() ([]byte, error) { return r.doc().JSON() }
