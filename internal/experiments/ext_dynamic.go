package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sched"
	"obm/internal/workload"
)

func init() { register(extDynamic{}) }

// extDynamic is an extension experiment backing Section IV.B's dynamic
// argument: applications arrive and depart over a timeline, and
// remapping policies trade migrations for sustained balance.
type extDynamic struct{}

func (extDynamic) ID() string { return "dynamic" }
func (extDynamic) Title() string {
	return "Extension: remapping policies under application churn (Section IV.B)"
}

// DynamicRow is one policy's outcome on the churn scenario.
type DynamicRow struct {
	Policy             string
	MaxAPL, DevAPL     float64
	Remaps, Migrations int
}

// DynamicResult is the policy comparison.
type DynamicResult struct {
	Rows []DynamicRow
}

// churnScenario builds a deterministic timeline from the paper
// configurations: applications of different intensities come and go.
func churnScenario() (sched.Scenario, error) {
	pick := func(cfg string, idx int, name string) (*workload.Application, error) {
		w, err := workload.Config(cfg)
		if err != nil {
			return nil, err
		}
		app := w.Apps[idx]
		app.Name = name
		return &app, nil
	}
	var sc sched.Scenario
	type arrival struct {
		t    int64
		cfg  string
		idx  int
		name string
	}
	arrivals := []arrival{
		{0, "C1", 3, "h1"}, {0, "C1", 0, "l1"}, {0, "C3", 2, "m1"},
		{150, "C3", 3, "h2"},
		{300, "C5", 0, "l2"},
		{450, "C8", 1, "m2"},
		{600, "C4", 3, "h3"},
	}
	departs := []struct {
		t    int64
		name string
	}{
		{300, "h1"}, {450, "m1"}, {600, "l1"}, {750, "h2"},
	}
	di := 0
	for _, a := range arrivals {
		for di < len(departs) && departs[di].t <= a.t {
			sc.Events = append(sc.Events, sched.Event{Time: departs[di].t, Depart: departs[di].name})
			di++
		}
		app, err := pick(a.cfg, a.idx, a.name)
		if err != nil {
			return sched.Scenario{}, err
		}
		sc.Events = append(sc.Events, sched.Event{Time: a.t, Arrive: app})
	}
	for di < len(departs) {
		sc.Events = append(sc.Events, sched.Event{Time: departs[di].t, Depart: departs[di].name})
		di++
	}
	sc.End = 900
	return sc, nil
}

func (e extDynamic) Run(ctx context.Context, o Options) (Result, error) {
	sc, err := churnScenario()
	if err != nil {
		return nil, err
	}
	lm := paperModel()
	policies := []sched.Policy{
		sched.Never{},
		sched.Every{Interval: 300},
		sched.WhenUnbalanced{Threshold: 0.5},
		sched.OnChange{},
	}
	res := &DynamicResult{}
	for _, pol := range policies {
		r, err := sched.NewRunner(lm, mapping.SortSelectSwap{}, pol)
		if err != nil {
			return nil, err
		}
		met, err := r.Run(ctx, sc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DynamicRow{
			Policy: pol.Name(),
			MaxAPL: met.TimeWeightedMaxAPL,
			DevAPL: met.TimeWeightedDevAPL,
			Remaps: met.Remaps, Migrations: met.Migrations,
		})
	}
	// On-change with a per-remap migration budget: the deployment-shaped
	// compromise.
	budgeted, err := sched.NewRunner(lm, mapping.SortSelectSwap{}, sched.OnChange{})
	if err != nil {
		return nil, err
	}
	budgeted.MigrationBudget = 16
	met, err := budgeted.Run(ctx, sc)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, DynamicRow{
		Policy: "on-change<=16mig",
		MaxAPL: met.TimeWeightedMaxAPL,
		DevAPL: met.TimeWeightedDevAPL,
		Remaps: met.Remaps, Migrations: met.Migrations,
	})
	return res, nil
}

func (r *DynamicResult) table() *Table {
	t := newTable("Remapping policies under application churn (time-weighted)",
		"Policy", "max-APL", "dev-APL", "remaps", "migrations")
	for _, row := range r.Rows {
		t.addRow(row.Policy,
			fmt.Sprintf("%.3f", row.MaxAPL),
			fmt.Sprintf("%.4f", row.DevAPL),
			fmt.Sprint(row.Remaps),
			fmt.Sprint(row.Migrations))
	}
	return t
}

func (r *DynamicResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(remap-on-change sustains balance through churn at the highest migration\n" +
			" cost; capping each remap at 16 best-first migrations keeps the same\n" +
			" balance for a third of the moves; the adaptive dev-threshold policy\n" +
			" remaps rarely; blind periodic remaps help little; never drifts)\n"))
}

// Render implements Result.
func (r *DynamicResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *DynamicResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *DynamicResult) JSON() ([]byte, error) { return r.doc().JSON() }
