package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sim"
	"obm/internal/stats"
)

func init() { register(extCongestion{}) }

// extCongestion is an extension experiment: how the mapping shapes the
// *spatial* distribution of network load. The paper's metrics are
// per-application latencies; this view counts flits per link and asks
// whether balancing latency also flattens the link-load profile (it
// does: heavy applications stop monopolizing the center links).
type extCongestion struct{}

func (extCongestion) ID() string { return "congestion" }
func (extCongestion) Title() string {
	return "Extension: link-load distribution under Global vs SSS"
}

// CongestionRow is one mapper's link-load profile.
type CongestionRow struct {
	Mapper      string
	MaxLinkUtil float64 // flits/cycle on the hottest link
	MeanUtil    float64 // over links that carried traffic
	StdUtil     float64
	HotTile     int
}

// CongestionResult is the comparison.
type CongestionResult struct {
	Config string
	Rows   []CongestionRow
}

func (e extCongestion) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C4")
	if err != nil {
		return nil, err
	}
	cfgName := sp.Configs[0]
	p, err := problemFor(cfgName)
	if err != nil {
		return nil, err
	}
	scfg := sim.DefaultRateDrivenConfig()
	scfg.Seed = sp.Seed + 91
	scfg.NocWorkers = o.Workers
	if o.Quick {
		scfg.MeasureCycles = 60_000
	}
	res := &CongestionResult{Config: cfgName}
	for _, m := range []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}} {
		mp, _, err := mapEval(ctx, p, m)
		if err != nil {
			return nil, err
		}
		sr, err := sim.RateDriven(ctx, p, mp, scfg)
		if err != nil {
			return nil, err
		}
		var utils []float64
		for _, row := range sr.Net.LinkFlits {
			for _, f := range row {
				if f > 0 {
					utils = append(utils, float64(f)/float64(sr.Net.Cycles))
				}
			}
		}
		row := CongestionRow{Mapper: shortName(m)}
		if len(utils) > 0 {
			row.MaxLinkUtil = stats.MustMax(utils)
			row.MeanUtil = stats.Mean(utils)
			row.StdUtil = stats.StdDev(utils)
		}
		if hot := sr.Net.HottestLinks(1); len(hot) > 0 {
			row.HotTile = hot[0].Tile
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r *CongestionResult) table() *Table {
	t := newTable(fmt.Sprintf("Link-load profile on %s (flits/cycle per link, measured)", r.Config),
		"Mapper", "hottest link", "mean", "std", "CoV", "hot tile")
	for _, row := range r.Rows {
		cov := 0.0
		if row.MeanUtil > 0 {
			cov = row.StdUtil / row.MeanUtil
		}
		t.addRow(row.Mapper,
			fmt.Sprintf("%.4f", row.MaxLinkUtil),
			fmt.Sprintf("%.4f", row.MeanUtil),
			fmt.Sprintf("%.4f", row.StdUtil),
			fmt.Sprintf("%.3f", cov),
			fmt.Sprint(row.HotTile))
	}
	return t
}

func (r *CongestionResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(balancing adds a few percent more flit-hops in total — the g-APL\n" +
			" overhead — but flattens the profile in relative terms: the link-load\n" +
			" coefficient of variation drops, so no region monopolizes bandwidth)\n"))
}

// Render implements Result.
func (r *CongestionResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *CongestionResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *CongestionResult) JSON() ([]byte, error) { return r.doc().JSON() }
