package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/sched"
)

func init() { register(extDynstream{}) }

// extDynstream scales the dynamic argument from the hand-built churn
// timeline ("dynamic") to a generated stream of arrivals and
// departures: the streaming scheduler places each arrival
// incrementally and consults a remapping policy between event groups,
// so schemes differ in placement heuristic, remap engine (warm-started
// versus full re-solve), and firing policy under a shared
// migration-cost-aware adoption test.
type extDynstream struct{}

func (extDynstream) ID() string { return "dynstream" }
func (extDynstream) Title() string {
	return "Extension: streaming remapping schemes on a generated churn timeline"
}

// DynstreamRow is one scheme's outcome on the shared timeline.
type DynstreamRow struct {
	Scheme           string
	Events           int
	Remaps, Rejected int
	Migrations       int
	MaxAPL, DevAPL   float64
}

// DynstreamResult is the scheme comparison. Stream records the
// generator override spec the run used ("" for the defaults), so
// outputs under different load shapes are self-describing.
type DynstreamResult struct {
	Events int
	Stream string
	Rows   []DynstreamRow
}

// dynstreamScheme pairs a label with a fully assembled stream
// configuration.
type dynstreamScheme struct {
	name string
	cfg  sched.StreamConfig
}

// dynstreamSchemes builds the ladder of schemes: placement-only
// baselines, then periodic remapping — warm-started SSS at a dense
// cadence versus full re-solves at a sparse one, the configurations
// BenchmarkDynamicStream shows cost roughly the same wall-clock — and
// finally the adaptive dev-threshold policy, debounced so a drift
// period cannot trigger a solve at every event group. Every remapping
// scheme shares the same composite objective (balance-weighted, with a
// per-thread migration charge) so adoption decisions are comparable.
func dynstreamSchemes(interval int64) []dynstreamScheme {
	obj := core.Weighted{Max: 1, Dev: 2}
	cost := sched.CompositeCost{Objective: obj, PerMigration: 0.01}
	warm := sched.WarmRemap{SSS: mapping.SortSelectSwap{Objective: obj, MaxStep: 4, Passes: 1}}
	full := sched.FullRemap{Mapper: mapping.SortSelectSwap{Objective: obj}}
	dense := interval / 2
	return []dynstreamScheme{
		{"spiral/never", sched.StreamConfig{
			Placement: &sched.SpiralPlacement{},
		}},
		{"sam/never", sched.StreamConfig{
			Placement: &sched.SAMPlacement{},
		}},
		{"spiral+warm/dense", sched.StreamConfig{
			Placement: &sched.SpiralPlacement{},
			Policy:    sched.Every{Interval: dense},
			Remapper:  warm, Cost: cost,
		}},
		{"spiral+full/sparse", sched.StreamConfig{
			Placement: &sched.SpiralPlacement{},
			Policy:    sched.Every{Interval: interval},
			Remapper:  full, Cost: cost,
		}},
		{"spiral+warm/adaptive", sched.StreamConfig{
			Placement: &sched.SpiralPlacement{},
			Policy:    &sched.Debounced{Inner: sched.WhenUnbalanced{Threshold: 0.35}, MinInterval: interval / 4},
			Remapper:  warm, Cost: cost,
		}},
	}
}

func (e extDynstream) Run(ctx context.Context, o Options) (Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	events := 1_000_000
	interval := int64(20_000)
	if o.Quick {
		events = 10_000
		interval = 5_000
	}
	lm := paperModel()
	gen, err := sched.GenConfig{Events: events, Tiles: lm.NumTiles(), Seed: o.Seed}.WithOverrides(o.Stream)
	if err != nil {
		return nil, err
	}
	res := &DynstreamResult{Events: events, Stream: o.Stream}
	for _, s := range dynstreamSchemes(interval) {
		src, err := sched.NewGenerator(gen)
		if err != nil {
			return nil, err
		}
		r, err := sched.NewStreamRunner(lm, s.cfg)
		if err != nil {
			return nil, err
		}
		met, err := r.Run(ctx, src)
		if err != nil {
			return nil, fmt.Errorf("dynstream scheme %s: %w", s.name, err)
		}
		res.Rows = append(res.Rows, DynstreamRow{
			Scheme: s.name,
			Events: met.Events,
			Remaps: met.Remaps, Rejected: met.RemapsRejected,
			Migrations: met.Migrations,
			MaxAPL:     met.TimeWeightedMaxAPL,
			DevAPL:     met.TimeWeightedDevAPL,
		})
	}
	// Wall-clock SLO metrics (p99 remap latency, migrations per remap,
	// time-weighted dev-APL histogram) are recorded in the obs registry
	// (sched.remap.*, sched.stream.*), never in this result: the
	// envelope stays deterministic.
	return res, nil
}

func (r *DynstreamResult) table() *Table {
	title := fmt.Sprintf("Streaming remapping schemes (%d-event generated timeline, time-weighted)", r.Events)
	if r.Stream != "" {
		title = fmt.Sprintf("Streaming remapping schemes (%d-event generated timeline, time-weighted; stream %s)", r.Events, r.Stream)
	}
	t := newTable(title,
		"Scheme", "events", "remaps", "rejected", "migrations", "max-APL", "dev-APL")
	for _, row := range r.Rows {
		t.addRow(row.Scheme,
			fmt.Sprint(row.Events),
			fmt.Sprint(row.Remaps),
			fmt.Sprint(row.Rejected),
			fmt.Sprint(row.Migrations),
			fmt.Sprintf("%.3f", row.MaxAPL),
			fmt.Sprintf("%.4f", row.DevAPL))
	}
	return t
}

func (r *DynstreamResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(the streaming scheduler sustains the timeline in O(live apps) memory;\n" +
			" warm-started SSS costs a fraction of a full re-solve per attempt, so\n" +
			" at twice the cadence it matches or beats the sparse full re-solve's\n" +
			" balance for less wall-clock (BenchmarkDynamicStream pins the timing);\n" +
			" the debounced dev-threshold policy remaps only when placement drift\n" +
			" crosses the threshold and sustains the best balance; the composite\n" +
			" cost rejects candidates whose gain does not cover their migrations —\n" +
			" remap latency SLOs are published via the obs registry, not here)\n"))
}

// Render implements Result.
func (r *DynstreamResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *DynstreamResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *DynstreamResult) JSON() ([]byte, error) { return r.doc().JSON() }
