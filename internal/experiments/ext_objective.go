package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
)

func init() { register(extObjective{}) }

// extObjective is the pluggable-objective experiment: every optimizing
// mapper is run once per core.Objective (the balance metrics the
// paper's Section III.A weighs against each other), and each cell
// reports all four latency metrics of the resulting mapping. The grid
// makes the trade-off space concrete: optimizing dev-APL buys flatter
// per-application latencies than the max-APL optimum at some g-APL
// cost, optimizing g-APL collapses to the Global pathology, and so on.
// Every cell flows through the scenario cache under an objective-
// qualified fingerprint, exercising the cache's objective separation.
type extObjective struct{}

func (extObjective) ID() string { return "objective" }
func (extObjective) Title() string {
	return "Extension: mapper x objective grid over the paper's balance metrics"
}

// ObjectiveCell is one (mapper, objective) entry of the grid: the four
// latency metrics of the mapping the mapper produced while optimizing
// that objective.
type ObjectiveCell struct {
	Mapper    string
	Objective string
	MaxAPL    float64
	DevAPL    float64
	GlobalAPL float64
	// MinMaxRatio is min/max APL (higher is better, unlike the other
	// three).
	MinMaxRatio float64
	// EnergyPJ is the mapping's dynamic NoC energy (core.Energy, pJ).
	EnergyPJ float64
}

// ObjectiveConfig is one configuration's grid, mapper-major.
type ObjectiveConfig struct {
	Config string
	Cells  []ObjectiveCell
}

// ObjectiveResult is the full experiment output.
type ObjectiveResult struct {
	Configs []ObjectiveConfig
}

func (e extObjective) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1", "C2")
	if err != nil {
		return nil, err
	}
	objs := core.Objectives()
	res := &ObjectiveResult{Configs: make([]ObjectiveConfig, len(sp.Configs))}
	err = parallelConfigs(ctx, sp.Configs, func(ci int, cfg string) error {
		p, err := problemFor(cfg)
		if err != nil {
			return err
		}
		grid := ObjectiveConfig{Config: cfg}
		// The optimizing mappers of the grid, parameterized by objective.
		// Global and the other construction heuristics have no cost
		// function to swap, so they are not rows here.
		mappersFor := func(obj core.Objective) []mapping.Mapper {
			return []mapping.Mapper{
				mapping.MonteCarlo{Samples: sp.Budget.MCSamples, Seed: sp.Seed + 1, Objective: obj},
				mapping.Annealing{Iters: sp.Budget.SAIters, Seed: sp.Seed + 2, Objective: obj},
				mapping.SortSelectSwap{Objective: obj},
			}
		}
		labels := []string{"MC", "SA", "SSS"}
		// Mapper-major: all objectives of one mapper are adjacent rows,
		// so the per-mapper trade-offs read straight down the table.
		num := make([]float64, p.NumApps())
		for mi := range labels {
			for _, obj := range objs {
				m := mappersFor(obj)[mi]
				mp, ev, err := mapEval(ctx, p, m)
				if err != nil {
					return fmt.Errorf("%s under %s: %w", m.Name(), obj.Name(), err)
				}
				p.Numerators(mp, num)
				grid.Cells = append(grid.Cells, ObjectiveCell{
					Mapper:      labels[mi],
					Objective:   obj.Name(),
					MaxAPL:      ev.MaxAPL,
					DevAPL:      ev.DevAPL,
					GlobalAPL:   ev.GlobalAPL,
					MinMaxRatio: ev.MinMaxRatio,
					EnergyPJ:    core.Energy{}.Value(p, num),
				})
			}
		}
		res.Configs[ci] = grid
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ownMetric returns the cell's value under the named objective's own
// metric and whether lower is better for it.
func (c ObjectiveCell) ownMetric(objective string) (value float64, lowerBetter bool) {
	switch objective {
	case (core.DevAPL{}).Name():
		return c.DevAPL, true
	case (core.GAPL{}).Name():
		return c.GlobalAPL, true
	case (core.MinMaxRatio{}).Name():
		return c.MinMaxRatio, false
	case (core.Energy{}).Name():
		return c.EnergyPJ, true
	default:
		return c.MaxAPL, true
	}
}

// OwnMetricGain returns, for a (mapper, objective) cell, the relative
// improvement of the objective's own metric over the same mapper's
// max-APL-optimized mapping (positive means the dedicated objective
// won), or ok=false when either cell is missing.
func (r *ObjectiveResult) OwnMetricGain(config, mapper, objective string) (gain float64, ok bool) {
	var cell, base *ObjectiveCell
	for i := range r.Configs {
		if r.Configs[i].Config != config {
			continue
		}
		for j := range r.Configs[i].Cells {
			c := &r.Configs[i].Cells[j]
			if c.Mapper != mapper {
				continue
			}
			switch c.Objective {
			case objective:
				cell = c
			case (core.MaxAPL{}).Name():
				base = c
			}
		}
	}
	if cell == nil || base == nil {
		return 0, false
	}
	v, lower := cell.ownMetric(objective)
	b, _ := base.ownMetric(objective)
	if b == 0 {
		return 0, false
	}
	if lower {
		return 100 * (b - v) / b, true
	}
	return 100 * (v - b) / b, true
}

func (r *ObjectiveResult) doc() *Doc {
	d := newDoc()
	for _, g := range r.Configs {
		t := newTable(fmt.Sprintf("Mapper x objective grid, %s (cycles; min/max dimensionless; energy pJ)", g.Config),
			"Mapper", "Objective", "max-APL", "dev-APL", "g-APL", "min/max", "energy")
		for _, c := range g.Cells {
			t.addRow(c.Mapper, c.Objective,
				fmt.Sprintf("%.2f", c.MaxAPL),
				fmt.Sprintf("%.3f", c.DevAPL),
				fmt.Sprintf("%.2f", c.GlobalAPL),
				fmt.Sprintf("%.3f", c.MinMaxRatio),
				fmt.Sprintf("%.1f", c.EnergyPJ))
		}
		d.add(t)
	}
	// Summarize how much each dedicated objective buys over optimizing
	// max-APL and reading the metric off (positive: the dedicated
	// objective won its own metric; negative: max-APL already covered it).
	if len(r.Configs) > 0 {
		cfg := r.Configs[0].Config
		for _, mapper := range []string{"SA", "SSS"} {
			for _, obj := range core.Objectives()[1:] {
				if gain, ok := r.OwnMetricGain(cfg, mapper, obj.Name()); ok {
					d.notef("%s: %s{%s} own-metric gain vs %s{max-APL}: %+.2f%%\n",
						cfg, mapper, obj.Name(), mapper, gain)
				}
			}
		}
	}
	d.renderOnly(Note("(each row optimizes its Objective column; the other metrics show the cost\n" +
		" of that choice — the paper's Section III.A trade-off made concrete)\n"))
	return d
}

// Render implements Result.
func (r *ObjectiveResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *ObjectiveResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *ObjectiveResult) JSON() ([]byte, error) { return r.doc().JSON() }
