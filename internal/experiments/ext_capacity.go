package experiments

import (
	"context"
	"fmt"

	"obm/internal/core"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

func init() { register(extCapacity{}) }

// extCapacity is the multi-thread-per-tile generalization the paper's
// Section III.B footnote mentions but does not treat: two
// configurations' worth of applications (8 apps, 128 threads) share one
// 8x8 chip with two hardware threads per tile. Slots generalize tiles
// and every algorithm carries over unchanged.
type extCapacity struct{}

func (extCapacity) ID() string { return "capacity" }
func (extCapacity) Title() string {
	return "Extension: multiple threads per tile (the paper's footnote generalization)"
}

// CapacityRow is one mapper's outcome on the slotted chip.
type CapacityRow struct {
	Mapper         string
	MaxAPL, DevAPL float64
	GAPL           float64
}

// CapacityResult is the comparison.
type CapacityResult struct {
	Apps, Threads, Tiles, Capacity int
	RandMax, RandDev               float64
	Rows                           []CapacityRow
}

func (e extCapacity) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec()
	if err != nil {
		return nil, err
	}
	lm, err := model.New(mesh.MustNew(8, 8), model.DefaultParams())
	if err != nil {
		return nil, err
	}
	// Two paper configurations' worth of applications on one chip.
	w := &workload.Workload{Name: "capacity"}
	for _, cfg := range []string{"C1", "C3"} {
		src, err := workload.Config(cfg)
		if err != nil {
			return nil, err
		}
		w.Apps = append(w.Apps, src.Apps...)
	}
	p, err := core.NewProblemWithCapacity(lm, w, 2)
	if err != nil {
		return nil, err
	}
	res := &CapacityResult{
		Apps: p.NumApps(), Threads: p.N(),
		Tiles: lm.NumTiles(), Capacity: p.Capacity(),
	}
	rng := stats.NewRand(sp.Seed + 71)
	draws := sp.Budget.RandomDraws / 10
	if draws < 100 {
		draws = 100
	}
	for i := 0; i < draws; i++ {
		ev := p.Evaluate(core.RandomMapping(p.N(), rng))
		res.RandMax += ev.MaxAPL
		res.RandDev += ev.DevAPL
	}
	res.RandMax /= float64(draws)
	res.RandDev /= float64(draws)

	for _, m := range []mapping.Mapper{
		mapping.Global{},
		mapping.MonteCarlo{Samples: sp.Budget.MCSamples, Seed: sp.Seed + 72},
		mapping.Annealing{Iters: sp.Budget.SAIters, Seed: sp.Seed + 73},
		mapping.SortSelectSwap{},
	} {
		_, ev, err := mapEval(ctx, p, m)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CapacityRow{
			Mapper: shortName(m), MaxAPL: ev.MaxAPL, DevAPL: ev.DevAPL, GAPL: ev.GlobalAPL,
		})
	}
	return res, nil
}

func (r *CapacityResult) table() *Table {
	t := newTable(fmt.Sprintf("%d applications, %d threads on %d tiles (capacity %d)",
		r.Apps, r.Threads, r.Tiles, r.Capacity),
		"Mapper", "max-APL", "dev-APL", "g-APL")
	t.addRow("Random(avg)", fmt.Sprintf("%.3f", r.RandMax), fmt.Sprintf("%.4f", r.RandDev), "-")
	for _, row := range r.Rows {
		t.addRow(row.Mapper,
			fmt.Sprintf("%.3f", row.MaxAPL),
			fmt.Sprintf("%.4f", row.DevAPL),
			fmt.Sprintf("%.3f", row.GAPL))
	}
	return t
}

func (r *CapacityResult) doc() *Doc {
	return newDoc().add(r.table()).
		renderOnly(Note("\n(slots generalize tiles: with 2 threads per tile the same algorithms\n" +
			" balance 8 applications on one chip; SSS keeps its advantage)\n"))
}

// Render implements Result.
func (r *CapacityResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *CapacityResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *CapacityResult) JSON() ([]byte, error) { return r.doc().JSON() }
