package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sim"
	"obm/internal/workload"
)

func init() { register(fig9{}) }

// fig9 reproduces Figure 9: the max-APL of the four mapping methods on
// each configuration (the paper's headline 10.42% SSS-vs-Global
// reduction).
type fig9 struct{}

func (fig9) ID() string    { return "fig9" }
func (fig9) Title() string { return "Figure 9: max-APL comparison of the four mapping methods" }

// MapperSeries holds one metric per (mapper, config) — shared by the
// fig9/fig10/fig11 bar charts.
type MapperSeries struct {
	Caption string
	Configs []string
	Mappers []string
	// Values[m][c] is the metric of mapper m on config c.
	Values [][]float64
	// Unit labels the metric.
	Unit string
	// PaperNote cites the paper's corresponding number.
	PaperNote string
	// Normalized optionally divides each column by the first mapper's
	// value when rendering.
	Normalized bool
}

func (f fig9) Run(ctx context.Context, o Options) (Result, error) {
	cfgs, err := configsOrDefault(o, workload.ConfigNames())
	if err != nil {
		return nil, err
	}
	mappers := standardMappers(o)
	res := &MapperSeries{
		Caption:   "Figure 9: max-APL (cycles)",
		Configs:   cfgs,
		Unit:      "cycles",
		PaperNote: "paper: SSS reduces max-APL vs Global by 10.42% on average (MC 8.74%, SA 9.44%)",
	}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	// One job per configuration, each building its own Problem
	// (share-nothing); RunReplicas returns columns in config order, so
	// the table is identical to the serial loop's.
	cols, err := sim.RunReplicas(ctx, len(cfgs), 0, func(ctx context.Context, ci int) ([]float64, error) {
		p, err := problemFor(cfgs[ci])
		if err != nil {
			return nil, err
		}
		col := make([]float64, len(mappers))
		for mi, m := range mappers {
			mp, err := mapping.MapAndCheck(ctx, m, p)
			if err != nil {
				return nil, err
			}
			col[mi] = p.MaxAPL(mp)
		}
		return col, nil
	})
	if err != nil {
		return nil, err
	}
	res.Values = make([][]float64, len(mappers))
	for mi := range mappers {
		res.Values[mi] = make([]float64, len(cfgs))
		for ci := range cfgs {
			res.Values[mi][ci] = cols[ci][mi]
		}
	}
	return res, nil
}

func (r *MapperSeries) avg(mi int) float64 {
	var s float64
	for _, v := range r.Values[mi] {
		s += v
	}
	return s / float64(len(r.Values[mi]))
}

func (r *MapperSeries) table() *table {
	headers := append([]string{"Mapper"}, r.Configs...)
	headers = append(headers, "Avg")
	t := newTable(r.Caption, headers...)
	for mi, name := range r.Mappers {
		cells := []string{name}
		for ci, v := range r.Values[mi] {
			if r.Normalized && r.Values[0][ci] != 0 {
				cells = append(cells, fmt.Sprintf("%.4f", v/r.Values[0][ci]))
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			}
		}
		if r.Normalized && r.avg(0) != 0 {
			cells = append(cells, fmt.Sprintf("%.4f", r.avg(mi)/r.avg(0)))
		} else {
			cells = append(cells, fmt.Sprintf("%.3f", r.avg(mi)))
		}
		t.addRow(cells...)
	}
	return t
}

// Render implements Result.
func (r *MapperSeries) Render() string {
	s := r.table().Render()
	avgs := make([]float64, len(r.Mappers))
	for mi := range r.Mappers {
		avgs[mi] = r.avg(mi)
		if r.Normalized && r.avg(0) != 0 {
			avgs[mi] /= r.avg(0)
		}
	}
	s += "\n" + renderBars("averages:", r.Mappers, avgs, r.Unit)
	// Relative-to-first-mapper summary (first is Global by convention).
	if len(r.Mappers) > 1 && r.avg(0) > 0 {
		for mi := 1; mi < len(r.Mappers); mi++ {
			s += fmt.Sprintf("%s vs %s: %+.2f%%\n", r.Mappers[mi], r.Mappers[0],
				100*(r.avg(mi)-r.avg(0))/r.avg(0))
		}
	}
	if r.PaperNote != "" {
		s += "(" + r.PaperNote + ")\n"
	}
	return s
}

// CSV implements Result.
func (r *MapperSeries) CSV() string { return r.table().CSV() }
