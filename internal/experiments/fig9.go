package experiments

import (
	"context"
	"fmt"

	"obm/internal/sim"
	"obm/internal/workload"
)

func init() { register(fig9{}) }

// fig9 reproduces Figure 9: the max-APL of the four mapping methods on
// each configuration (the paper's headline 10.42% SSS-vs-Global
// reduction).
type fig9 struct{}

func (fig9) ID() string    { return "fig9" }
func (fig9) Title() string { return "Figure 9: max-APL comparison of the four mapping methods" }

// MapperSeries holds one metric per (mapper, config) — shared by the
// fig9/fig10/fig11 bar charts.
type MapperSeries struct {
	Caption string
	Configs []string
	Mappers []string
	// Values[m][c] is the metric of mapper m on config c.
	Values [][]float64
	// Unit labels the metric.
	Unit string
	// PaperNote cites the paper's corresponding number.
	PaperNote string
	// Normalized optionally divides each column by the first mapper's
	// value when rendering.
	Normalized bool
}

func (f fig9) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	mappers := sp.StandardMappers()
	res := &MapperSeries{
		Caption:   "Figure 9: max-APL (cycles)",
		Configs:   cfgs,
		Unit:      "cycles",
		PaperNote: "paper: SSS reduces max-APL vs Global by 10.42% on average (MC 8.74%, SA 9.44%)",
	}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	// One job per configuration, each building its own Problem
	// (share-nothing); RunReplicas returns columns in config order, so
	// the table is identical to the serial loop's.
	cols, err := sim.RunReplicas(ctx, len(cfgs), 0, func(ctx context.Context, ci int) ([]float64, error) {
		p, err := problemFor(cfgs[ci])
		if err != nil {
			return nil, err
		}
		col := make([]float64, len(mappers))
		for mi, m := range mappers {
			_, ev, err := mapEval(ctx, p, m)
			if err != nil {
				return nil, err
			}
			col[mi] = ev.MaxAPL
		}
		return col, nil
	})
	if err != nil {
		return nil, err
	}
	res.Values = make([][]float64, len(mappers))
	for mi := range mappers {
		res.Values[mi] = make([]float64, len(cfgs))
		for ci := range cfgs {
			res.Values[mi][ci] = cols[ci][mi]
		}
	}
	return res, nil
}

func (r *MapperSeries) avg(mi int) float64 {
	var s float64
	for _, v := range r.Values[mi] {
		s += v
	}
	return s / float64(len(r.Values[mi]))
}

func (r *MapperSeries) table() *Table {
	headers := append([]string{"Mapper"}, r.Configs...)
	headers = append(headers, "Avg")
	t := newTable(r.Caption, headers...)
	for mi, name := range r.Mappers {
		cells := []string{name}
		for ci, v := range r.Values[mi] {
			if r.Normalized && r.Values[0][ci] != 0 {
				cells = append(cells, fmt.Sprintf("%.4f", v/r.Values[0][ci]))
			} else {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			}
		}
		if r.Normalized && r.avg(0) != 0 {
			cells = append(cells, fmt.Sprintf("%.4f", r.avg(mi)/r.avg(0)))
		} else {
			cells = append(cells, fmt.Sprintf("%.3f", r.avg(mi)))
		}
		t.addRow(cells...)
	}
	return t
}

func (r *MapperSeries) doc() *Doc {
	t := r.table()
	t.Units = r.Unit
	d := newDoc().add(t)
	avgs := make([]float64, len(r.Mappers))
	for mi := range r.Mappers {
		avgs[mi] = r.avg(mi)
		if r.Normalized && r.avg(0) != 0 {
			avgs[mi] /= r.avg(0)
		}
	}
	d.renderOnly(Note("\n"))
	d.renderOnly(&Series{Title: "averages:", Labels: r.Mappers, Values: avgs, Unit: r.Unit})
	// Relative-to-first-mapper summary (first is Global by convention).
	if len(r.Mappers) > 1 && r.avg(0) > 0 {
		for mi := 1; mi < len(r.Mappers); mi++ {
			d.notef("%s vs %s: %+.2f%%\n", r.Mappers[mi], r.Mappers[0],
				100*(r.avg(mi)-r.avg(0))/r.avg(0))
		}
	}
	if r.PaperNote != "" {
		d.renderOnly(Note("(" + r.PaperNote + ")\n"))
	}
	return d
}

// Render implements Result.
func (r *MapperSeries) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *MapperSeries) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *MapperSeries) JSON() ([]byte, error) { return r.doc().JSON() }
