package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sim"
	"obm/internal/stats"
)

func init() { register(extTail{}) }

// extTail is an extension experiment for the paper's QoS motivation:
// service agreements bind tail latency, not just the mean. It measures
// per-application P50/P95/P99 packet latencies under Global and SSS on
// the flit-level simulator and reports the cross-application spread of
// each percentile.
type extTail struct{}

func (extTail) ID() string { return "tail" }
func (extTail) Title() string {
	return "Extension: per-application tail latency under Global vs SSS"
}

// TailRow is one (mapper, app) measurement.
type TailRow struct {
	Mapper        string
	App           int
	P50, P95, P99 float64
}

// TailResult carries rows plus per-mapper percentile spreads.
type TailResult struct {
	Config string
	Rows   []TailRow
	// SpreadP99[mapper] is max-min of P99 across applications.
	SpreadP99 map[string]float64
}

func (e extTail) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1")
	if err != nil {
		return nil, err
	}
	cfgName := sp.Configs[0]
	p, err := problemFor(cfgName)
	if err != nil {
		return nil, err
	}
	scfg := sim.DefaultRateDrivenConfig()
	scfg.Seed = sp.Seed + 51
	scfg.NocWorkers = o.Workers
	if o.Quick {
		scfg.MeasureCycles = 60_000
	}
	reps := sp.Budget.SimReplicas
	res := &TailResult{Config: cfgName, SpreadP99: map[string]float64{}}
	for _, m := range []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}} {
		mp, _, err := mapEval(ctx, p, m)
		if err != nil {
			return nil, err
		}
		// Independent seeded replicas sharded across cores; percentiles
		// are averaged per application, tightening the tail estimates
		// (a single replica reproduces the unreplicated measurement).
		srs, err := sim.RateDrivenReplicas(ctx, p, mp, scfg, reps)
		if err != nil {
			return nil, err
		}
		var p99s []float64
		for a := 0; a < p.NumApps(); a++ {
			row := TailRow{Mapper: shortName(m), App: a + 1}
			for _, sr := range srs {
				row.P50 += sr.Net.AppPercentile(a, 50)
				row.P95 += sr.Net.AppPercentile(a, 95)
				row.P99 += sr.Net.AppPercentile(a, 99)
			}
			row.P50 /= float64(len(srs))
			row.P95 /= float64(len(srs))
			row.P99 /= float64(len(srs))
			res.Rows = append(res.Rows, row)
			p99s = append(p99s, row.P99)
		}
		res.SpreadP99[shortName(m)] = stats.MustMax(p99s) - stats.MustMin(p99s)
	}
	return res, nil
}

func (r *TailResult) table() *Table {
	t := newTable(fmt.Sprintf("Per-application latency percentiles on %s (cycles, measured)", r.Config),
		"Mapper", "App", "P50", "P95", "P99")
	for _, row := range r.Rows {
		t.addRow(row.Mapper, fmt.Sprint(row.App),
			fmt.Sprintf("%.0f", row.P50),
			fmt.Sprintf("%.0f", row.P95),
			fmt.Sprintf("%.0f", row.P99))
	}
	return t
}

func (r *TailResult) doc() *Doc {
	d := newDoc().add(r.table())
	for _, m := range []string{"Global", "SSS"} {
		if v, ok := r.SpreadP99[m]; ok {
			d.notef("P99 spread across applications under %s: %.0f cycles\n", m, v)
		}
	}
	d.renderOnly(Note("(the body of each distribution moves with the mean: Global's slighted\n" +
		" application pays at every percentile, SSS's applications sit together;\n" +
		" the extreme tail is dominated by queueing noise at these loads)\n"))
	return d
}

// Render implements Result.
func (r *TailResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *TailResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *TailResult) JSON() ([]byte, error) { return r.doc().JSON() }
