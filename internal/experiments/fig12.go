package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/workload"
)

func init() { register(fig12{}) }

// fig12 reproduces Figure 12: simulated-annealing solution quality as a
// function of its runtime budget, normalized to SSS. The paper shows SA
// still above SSS at 100x SSS's runtime. Runtime is controlled by the
// iteration budget (18k iterations ~= 1x SSS wall time; see
// EXPERIMENTS.md for the calibration).
type fig12 struct{}

func (fig12) ID() string    { return "fig12" }
func (fig12) Title() string { return "Figure 12: SA max-APL vs runtime budget (normalized to SSS)" }

// Fig12Result holds the SA quality curve.
type Fig12Result struct {
	// Multipliers are SA runtime budgets as multiples of SSS runtime.
	Multipliers []float64
	// SAMaxAPL[i] is SA's max-APL (averaged over configs) at budget i.
	SAMaxAPL []float64
	// SSSMaxAPL is the SSS average for reference.
	SSSMaxAPL float64
}

func (f fig12) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec(workload.ConfigNames()...)
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	mults := []float64{0.1, 0.3, 1, 3, 10, 30, 100}
	if o.Quick {
		mults = []float64{0.1, 1, 10}
	}
	const itersPerSSS = 18_000
	res := &Fig12Result{Multipliers: mults, SAMaxAPL: make([]float64, len(mults))}
	for _, cfg := range cfgs {
		p, err := problemFor(cfg)
		if err != nil {
			return nil, err
		}
		_, sev, err := mapEval(ctx, p, mapping.SortSelectSwap{})
		if err != nil {
			return nil, err
		}
		res.SSSMaxAPL += sev.MaxAPL
		for i, mult := range mults {
			iters := int(mult * itersPerSSS)
			if iters < 10 {
				iters = 10
			}
			_, saev, err := mapEval(ctx, p, mapping.Annealing{Iters: iters, Seed: sp.Seed + 7})
			if err != nil {
				return nil, err
			}
			res.SAMaxAPL[i] += saev.MaxAPL
		}
	}
	res.SSSMaxAPL /= float64(len(cfgs))
	for i := range res.SAMaxAPL {
		res.SAMaxAPL[i] /= float64(len(cfgs))
	}
	return res, nil
}

func (r *Fig12Result) doc() *Doc {
	d := newDoc()
	rt := newTable("Figure 12: SA quality vs runtime (average max-APL over configurations)",
		"SA runtime (x SSS)", "SA max-APL", "vs SSS")
	rt.Units = "cycles"
	for i, m := range r.Multipliers {
		rt.addRow(fmt.Sprintf("%.1f", m),
			fmt.Sprintf("%.3f", r.SAMaxAPL[i]),
			fmt.Sprintf("%+.2f%%", 100*(r.SAMaxAPL[i]-r.SSSMaxAPL)/r.SSSMaxAPL))
	}
	d.renderOnly(rt)
	d.notef("\nSSS max-APL: %.3f cycles at 1x runtime\n", r.SSSMaxAPL)
	d.renderOnly(Note("(paper: SA stays above SSS even at 100x runtime, with diminishing gains)\n"))
	ct := newTable("", "multiplier", "sa_max_apl", "sss_max_apl")
	ct.Units = "cycles"
	for i, m := range r.Multipliers {
		ct.addRow(fmt.Sprintf("%.2f", m), fmt.Sprintf("%.4f", r.SAMaxAPL[i]), fmt.Sprintf("%.4f", r.SSSMaxAPL))
	}
	d.csvOnly(ct)
	return d
}

// Render implements Result.
func (r *Fig12Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Fig12Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Fig12Result) JSON() ([]byte, error) { return r.doc().JSON() }
