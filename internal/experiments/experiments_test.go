package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "burst", "capacity", "congestion", "dynamic", "dynstream", "fig10", "fig11", "fig12", "fig3", "fig4",
		"fig5", "fig8", "fig9", "gap", "loadsweep", "objective", "pareto", "placement", "scaling", "seeds",
		"table1", "table3", "table4", "tail", "topology", "validate"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if len(All()) != len(want) {
		t.Error("All() length mismatch")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	r, err := Get("table1")
	if err != nil || r.ID() != "table1" {
		t.Errorf("Get(table1) = %v, %v", r, err)
	}
}

// TestAllExperimentsRunQuick executes every registered experiment in
// quick mode and sanity-checks the outputs render.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("even quick mode simulates; skip under -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID(), func(t *testing.T) {
			res, err := r.Run(context.Background(), quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", r.ID(), err)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Errorf("%s rendered suspiciously little output: %q", r.ID(), out)
			}
			csv := res.CSV()
			if !strings.Contains(csv, ",") && !strings.Contains(csv, "\n") {
				t.Errorf("%s CSV output empty", r.ID())
			}
			if r.Title() == "" {
				t.Error("empty title")
			}
		})
	}
}

// TestTable1Shape pins the paper's Table 1 directional claims.
func TestTable1Shape(t *testing.T) {
	res, err := table1{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table1Result)
	if len(r.Rows) != 4 {
		t.Fatalf("expected C1..C4, got %d rows", len(r.Rows))
	}
	if !(r.Avg.GlobalGAPL < r.Avg.RandGAPL) {
		t.Error("Global should reduce g-APL vs random")
	}
	if !(r.Avg.GlobalDevAPL > r.Avg.RandDevAPL) {
		t.Error("Global should increase dev-APL vs random (the imbalance claim)")
	}
	if !(r.Avg.GlobalMaxAPL > r.Avg.RandMaxAPL) {
		t.Error("Global should increase max-APL vs random")
	}
}

// TestTable4Shape pins the Table 4 ordering: SSS has the smallest
// average dev-APL, Global the largest.
func TestTable4Shape(t *testing.T) {
	res, err := table4{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table4Result)
	avgs := map[string]float64{}
	for i, n := range r.Mappers {
		avgs[n] = r.avg(i)
	}
	if !(avgs["SSS"] < avgs["Global"] && avgs["SSS"] < avgs["MC"]) {
		t.Errorf("SSS should have the lowest dev-APL: %+v", avgs)
	}
	if !(avgs["Global"] > avgs["MC"] && avgs["Global"] > avgs["SA"]) {
		t.Errorf("Global should have the highest dev-APL: %+v", avgs)
	}
}

// TestFig9Shape: SSS's average max-APL beats Global's by a margin in
// the paper's neighbourhood (paper: 10.42%).
func TestFig9Shape(t *testing.T) {
	res, err := fig9{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*MapperSeries)
	var global, sss float64
	for i, n := range r.Mappers {
		switch n {
		case "Global":
			global = r.avg(i)
		case "SSS":
			sss = r.avg(i)
		}
	}
	redux := (global - sss) / global
	if redux < 0.04 || redux > 0.25 {
		t.Errorf("SSS max-APL reduction vs Global = %.1f%%, want in [4%%, 25%%] (paper 10.42%%)", redux*100)
	}
}

// TestFig10Shape: SSS g-APL overhead vs Global stays under 8%.
func TestFig10Shape(t *testing.T) {
	res, err := fig10{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*MapperSeries)
	var global, sss float64
	for i, n := range r.Mappers {
		switch n {
		case "Global":
			global = r.avg(i)
		case "SSS":
			sss = r.avg(i)
		}
	}
	if loss := (sss - global) / global; loss < 0 || loss > 0.08 {
		t.Errorf("SSS g-APL overhead = %.2f%%, want within (0%%, 8%%] (paper <3.82%%)", loss*100)
	}
}

// TestFig11Shape: SSS dynamic power within a few percent of Global.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the NoC; skip under -short")
	}
	res, err := fig11{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*MapperSeries)
	var global, sss float64
	for i, n := range r.Mappers {
		switch n {
		case "Global":
			global = r.avg(i)
		case "SSS":
			sss = r.avg(i)
		}
	}
	if global <= 0 {
		t.Fatal("no power measured")
	}
	if over := (sss - global) / global; over > 0.08 || over < -0.05 {
		t.Errorf("SSS power overhead = %.2f%% vs Global, want within [-5%%, 8%%] (paper <2.7%%)", over*100)
	}
}

// TestFig12Shape: SA quality improves with budget, and at 0.1x SSS
// runtime SA is clearly worse than SSS.
func TestFig12Shape(t *testing.T) {
	res, err := fig12{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig12Result)
	if len(r.SAMaxAPL) < 2 {
		t.Fatal("need at least two budgets")
	}
	first, last := r.SAMaxAPL[0], r.SAMaxAPL[len(r.SAMaxAPL)-1]
	if last > first {
		t.Errorf("SA should improve with budget: %.3f -> %.3f", first, last)
	}
	if first <= r.SSSMaxAPL {
		t.Errorf("SA at 0.1x runtime (%.3f) should be worse than SSS (%.3f)", first, r.SSSMaxAPL)
	}
}

// TestFig5PinsPaperNumbers verifies the worked example digit-for-digit.
func TestFig5PinsPaperNumbers(t *testing.T) {
	res, err := fig5{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig5Result)
	if math.Abs(r.GoodAPL-10.3375) > 1e-9 {
		t.Errorf("optimal APL = %v, want 10.3375", r.GoodAPL)
	}
	if math.Abs(r.BadAPL-11.5375) > 1e-9 {
		t.Errorf("equally-bad APL = %v, want 11.5375", r.BadAPL)
	}
	if r.GoodDev > 1e-9 || r.BadDev > 1e-9 {
		t.Error("both mappings should have zero dev-APL")
	}
	if r.GoodRatio < 1-1e-9 || r.BadRatio < 1-1e-9 {
		t.Error("both mappings should have min/max ratio 1")
	}
	if r.SSSMaxAPL > 10.3375+0.15 {
		t.Errorf("SSS on the worked example found %.4f, want ~10.3375", r.SSSMaxAPL)
	}
}

func TestTable3Close(t *testing.T) {
	res, err := table3{}.Run(context.Background(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table3Result)
	if len(r.Rows) != 8 {
		t.Fatalf("expected 8 configs, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		rel := func(a, b float64) float64 {
			if b == 0 {
				return a
			}
			return (a - b) / b
		}
		if d := rel(row.Got.Cache.Mean, row.Want.Cache.Mean); d > 0.01 || d < -0.01 {
			t.Errorf("%s cache mean off by %.2f%%", row.Config, 100*d)
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	tb := newTable("T", "a", "b")
	tb.addRow("1", "2")
	tb.addRowf("%.1f", 3.14159, "x")
	out := tb.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "3.1") {
		t.Errorf("table render: %q", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv: %q", csv)
	}
	tb.addRow(`quo"te`, "with,comma")
	if !strings.Contains(tb.CSV(), `"quo""te"`) {
		t.Error("csv quoting broken")
	}
	grid := renderGrid("G", [][]int{{1, 2}, {3, 4}})
	if !strings.Contains(grid, " 1 ") || !strings.Contains(grid, "G\n") {
		t.Errorf("grid render: %q", grid)
	}
	hm := renderHeatmap("H", [][]float64{{0, 1}, {2, 3}}, "")
	if !strings.Contains(hm, "range") {
		t.Errorf("heatmap render: %q", hm)
	}
	mr := multi{parts: []Result{text("x"), text("y")}}
	if mr.Render() != "x\ny" || mr.CSV() != "x\ny" {
		t.Error("multi render broken")
	}
}

func TestOptionsSpec(t *testing.T) {
	q, err := Options{Quick: true}.Spec("C1", "C2")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Options{}.Spec("C1", "C2")
	if err != nil {
		t.Fatal(err)
	}
	if !(q.Budget.RandomDraws < f.Budget.RandomDraws) || !(q.Budget.MCSamples < f.Budget.MCSamples) || !(q.Budget.SAIters < f.Budget.SAIters) {
		t.Error("quick budgets should be smaller")
	}
	if f.Budget.MCSamples != 10_000 {
		t.Errorf("full MC budget %d, paper uses 10^4", f.Budget.MCSamples)
	}
	if len(f.Configs) != 2 || f.Configs[0] != "C1" {
		t.Errorf("spec should carry the default configs, got %v", f.Configs)
	}
	// Explicit configs override the defaults; unknown names fail fast.
	ov, err := Options{Configs: []string{"C5"}}.Spec("C1")
	if err != nil || len(ov.Configs) != 1 || ov.Configs[0] != "C5" {
		t.Errorf("explicit configs should win: %v, %v", ov.Configs, err)
	}
	if _, err := (Options{Configs: []string{"nope"}}).Spec("C1"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestStreamOptionValidation(t *testing.T) {
	o := quickOpts()
	o.Stream = "load=0.8,maxthreads=24"
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	o.Stream = "bogus=1"
	if err := o.Validate(); err == nil {
		t.Error("bad stream spec accepted")
	}
}
