package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// updateGolden regenerates the golden Render() captures under
// testdata/golden. Run `go test ./internal/experiments -run TestGolden
// -update-golden` after an intentional output change.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// durationToken matches Go duration strings (the only nondeterministic
// content an experiment renders: measured wall times in the ablation
// and scaling tables).
var durationToken = regexp.MustCompile(`\b[0-9]+(\.[0-9]+)?(ns|µs|us|ms|s)\b`)

// normalizeRender replaces wall-clock durations with a fixed token.
// Because tabwriter pads columns to their widest cell, a different
// duration width also shifts alignment spaces, so when any duration was
// present the run of spaces is collapsed too. Experiments that render
// no durations compare byte-for-byte.
func normalizeRender(s string) string {
	out := durationToken.ReplaceAllString(s, "<dur>")
	if out == s {
		return s
	}
	return regexp.MustCompile(` +`).ReplaceAllString(out, " ")
}

// TestGoldenRenders pins every experiment's human-readable output: the
// quick-mode seed-1 Render() string must stay byte-identical (modulo
// measured durations) across refactors of the rendering and scenario
// layers. The same captures also gate the artifact cache: a second run
// served from the cache must render the same bytes as the cold run.
func TestGoldenRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skip under -short")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID(), func(t *testing.T) {
			res, err := r.Run(context.Background(), quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", r.ID(), err)
			}
			got := normalizeRender(res.Render())
			path := filepath.Join("testdata", "golden", r.ID()+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden capture (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s Render() drifted from golden capture.\n--- got ---\n%s\n--- want ---\n%s\ndiff at byte %d",
					r.ID(), got, want, firstDiff(got, string(want)))
			}
		})
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenNormalize pins the normalization helper itself.
func TestGoldenNormalize(t *testing.T) {
	in := "runtime  1.23ms  done"
	want := "runtime <dur> done"
	if got := normalizeRender(in); got != want {
		t.Errorf("normalizeRender(%q) = %q, want %q", in, got, want)
	}
	plain := "no  durations   here 10.42% a3s"
	if got := normalizeRender(plain); got != plain {
		t.Errorf("normalizeRender should not touch %q, got %q", plain, got)
	}
	if !strings.Contains(normalizeRender("54.3µs"), "<dur>") {
		t.Error("µs duration not normalized")
	}
}
