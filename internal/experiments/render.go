package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// table accumulates rows and renders them with aligned columns, in the
// visual style of the paper's tables.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf(format, v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, parts)
}

// Render returns the aligned text table.
func (t *table) Render() string {
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title + "\n")
	}
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.headers, "\t"))
	sep := make([]string, len(t.headers))
	for i, h := range t.headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// renderGrid draws a rows x cols grid of small integers, the format of
// the paper's mapping figures (Figures 4 and 8a).
func renderGrid(title string, grid [][]int) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for _, row := range grid {
		sb.WriteString("  ")
		for _, v := range row {
			fmt.Fprintf(&sb, "%2d ", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderHeatmap draws per-tile float values with a shade character
// ramp, the format of the paper's Figure 3.
func renderHeatmap(title string, vals [][]float64) string {
	var mn, mx float64
	first := true
	for _, row := range vals {
		for _, v := range row {
			if first || v < mn {
				mn = v
			}
			if first || v > mx {
				mx = v
			}
			first = false
		}
	}
	ramp := []rune(" .:-=+*#%@")
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for _, row := range vals {
		sb.WriteString("  ")
		for _, v := range row {
			idx := 0
			if mx > mn {
				idx = int((v - mn) / (mx - mn) * float64(len(ramp)-1))
			}
			ch := ramp[idx]
			fmt.Fprintf(&sb, "%c%c", ch, ch)
		}
		sb.WriteString("   ")
		for _, v := range row {
			fmt.Fprintf(&sb, "%5.1f ", v)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  (range %.2f .. %.2f cycles)\n", mn, mx)
	return sb.String()
}

// multi concatenates several Results into one.
type multi struct {
	parts []Result
}

func (m multi) Render() string {
	var sb strings.Builder
	for i, p := range m.parts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Render())
	}
	return sb.String()
}

func (m multi) CSV() string {
	var sb strings.Builder
	for i, p := range m.parts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.CSV())
	}
	return sb.String()
}

// text is a Result that is plain prose in both forms.
type text string

func (t text) Render() string { return string(t) }
func (t text) CSV() string    { return string(t) }

// renderBars draws a horizontal ASCII bar chart, the closest a terminal
// gets to the paper's bar figures. Bars scale to the largest value.
func renderBars(title string, labels []string, values []float64, unit string) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	var mx float64
	wl := 0
	for i, v := range values {
		if v > mx {
			mx = v
		}
		if len(labels[i]) > wl {
			wl = len(labels[i])
		}
	}
	const width = 40
	for i, v := range values {
		n := 0
		if mx > 0 {
			n = int(v / mx * width)
		}
		fmt.Fprintf(&sb, "  %-*s %-*s %.3f %s\n", wl, labels[i], width, strings.Repeat("#", n), v, unit)
	}
	return sb.String()
}
