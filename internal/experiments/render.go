package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
)

// This file is the experiment layer's entire result-rendering pipeline.
// Every runner builds its output as a Doc — an ordered list of typed
// blocks (Table, Grid, Heatmap, Series, Note) — and the three Result
// forms all derive from that one model: Render() is the paper-style
// text, CSV() the spreadsheet form, JSON() the machine-readable
// Document schema (see DESIGN.md). Runners never concatenate output
// strings themselves.

// Block is one typed element of a result document.
type Block interface {
	// renderText is the block's human-readable form.
	renderText() string
	// csvText is the block's CSV form ("" for blocks with none).
	csvText() string
	// blockJSON is the block's wire form.
	blockJSON() BlockJSON
}

// Table accumulates rows and renders them with aligned columns, in the
// visual style of the paper's tables. Units optionally labels the cell
// units for machine readers (the text form carries units in the title).
type Table struct {
	Title   string
	Headers []string
	Units   string
	Rows    [][]string
}

func newTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

func (t *Table) addRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

func (t *Table) addRowf(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf(format, v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, parts)
}

// Render returns the aligned text table.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	sep := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func (t *Table) renderText() string { return t.Render() }
func (t *Table) csvText() string    { return t.CSV() }
func (t *Table) blockJSON() BlockJSON {
	return BlockJSON{Kind: "table", Title: t.Title, Headers: t.Headers, Rows: t.Rows, Unit: t.Units}
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Grid is a rows x cols grid of small integers, the format of the
// paper's mapping figures (Figures 4 and 8a).
type Grid struct {
	Title string
	Cells [][]int
}

func (g *Grid) renderText() string { return renderGrid(g.Title, g.Cells) }
func (g *Grid) csvText() string    { return "" }
func (g *Grid) blockJSON() BlockJSON {
	return BlockJSON{Kind: "grid", Title: g.Title, Cells: g.Cells}
}

// renderGrid draws a rows x cols grid of small integers.
func renderGrid(title string, grid [][]int) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for _, row := range grid {
		sb.WriteString("  ")
		for _, v := range row {
			fmt.Fprintf(&sb, "%2d ", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Heatmap is a per-tile float field drawn with a shade-character ramp,
// the format of the paper's Figure 3.
type Heatmap struct {
	Title  string
	Values [][]float64
	Unit   string
}

func (h *Heatmap) renderText() string { return renderHeatmap(h.Title, h.Values, h.Unit) }
func (h *Heatmap) csvText() string    { return "" }
func (h *Heatmap) blockJSON() BlockJSON {
	return BlockJSON{Kind: "heatmap", Title: h.Title, Values: h.Values, Unit: h.Unit}
}

// renderHeatmap draws per-tile float values with a shade character
// ramp; unit labels the range line ("cycles" when empty, the
// historical default).
func renderHeatmap(title string, vals [][]float64, unit string) string {
	if unit == "" {
		unit = "cycles"
	}
	var mn, mx float64
	first := true
	for _, row := range vals {
		for _, v := range row {
			if first || v < mn {
				mn = v
			}
			if first || v > mx {
				mx = v
			}
			first = false
		}
	}
	ramp := []rune(" .:-=+*#%@")
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for _, row := range vals {
		sb.WriteString("  ")
		for _, v := range row {
			idx := 0
			if mx > mn {
				idx = int((v - mn) / (mx - mn) * float64(len(ramp)-1))
			}
			ch := ramp[idx]
			fmt.Fprintf(&sb, "%c%c", ch, ch)
		}
		sb.WriteString("   ")
		for _, v := range row {
			fmt.Fprintf(&sb, "%5.1f ", v)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "  (range %.2f .. %.2f %s)\n", mn, mx, unit)
	return sb.String()
}

// Series is one labelled numeric series with a unit — the bar figures
// of the paper, rendered as a horizontal ASCII bar chart.
type Series struct {
	Title  string
	Labels []string
	Values []float64
	Unit   string
}

func (s *Series) renderText() string { return renderBars(s.Title, s.Labels, s.Values, s.Unit) }
func (s *Series) csvText() string    { return "" }
func (s *Series) blockJSON() BlockJSON {
	return BlockJSON{Kind: "series", Title: s.Title, Labels: s.Labels, Series: s.Values, Unit: s.Unit}
}

// renderBars draws a horizontal ASCII bar chart. Bars scale to the
// largest value.
func renderBars(title string, labels []string, values []float64, unit string) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	var mx float64
	wl := 0
	for i, v := range values {
		if v > mx {
			mx = v
		}
		if len(labels[i]) > wl {
			wl = len(labels[i])
		}
	}
	const width = 40
	for i, v := range values {
		n := 0
		if mx > 0 {
			n = int(v / mx * width)
		}
		fmt.Fprintf(&sb, "  %-*s %-*s %.3f %s\n", wl, labels[i], width, strings.Repeat("#", n), v, unit)
	}
	return sb.String()
}

// Note is render-only prose (summary lines, paper citations). It
// carries its own separators, so Render() is a plain concatenation.
type Note string

func (n Note) renderText() string   { return string(n) }
func (n Note) csvText() string      { return "" }
func (n Note) blockJSON() BlockJSON { return BlockJSON{Kind: "note", Text: string(n)} }

// blockVis says which textual forms a block appears in (every block
// appears in JSON).
type blockVis int

const (
	visBoth blockVis = iota
	visRenderOnly
	visCSVOnly
)

// Doc is the typed result model every experiment builds: an ordered
// list of blocks from which all three Result forms derive.
type Doc struct {
	blocks []Block
	vis    []blockVis
}

func newDoc() *Doc { return &Doc{} }

// add appends a block visible in both Render and CSV.
func (d *Doc) add(b Block) *Doc {
	d.blocks = append(d.blocks, b)
	d.vis = append(d.vis, visBoth)
	return d
}

// renderOnly appends a block visible in Render (and JSON) only.
func (d *Doc) renderOnly(b Block) *Doc {
	d.blocks = append(d.blocks, b)
	d.vis = append(d.vis, visRenderOnly)
	return d
}

// csvOnly appends a block visible in CSV (and JSON) only — the
// machine-shaped flat tables behind figures whose text form is a grid
// or heatmap.
func (d *Doc) csvOnly(b Block) *Doc {
	d.blocks = append(d.blocks, b)
	d.vis = append(d.vis, visCSVOnly)
	return d
}

// notef appends a render-only formatted Note.
func (d *Doc) notef(format string, args ...any) *Doc {
	return d.renderOnly(Note(fmt.Sprintf(format, args...)))
}

// Render implements Result: the concatenated text form.
func (d *Doc) Render() string {
	var sb strings.Builder
	for i, b := range d.blocks {
		if d.vis[i] == visCSVOnly {
			continue
		}
		sb.WriteString(b.renderText())
	}
	return sb.String()
}

// CSV implements Result: the concatenated CSV form.
func (d *Doc) CSV() string {
	var sb strings.Builder
	for i, b := range d.blocks {
		if d.vis[i] == visRenderOnly {
			continue
		}
		sb.WriteString(b.csvText())
	}
	return sb.String()
}

// JSON implements Result: the Document wire form.
func (d *Doc) JSON() ([]byte, error) {
	return json.Marshal(d.Document())
}

// Document returns the machine-readable form of the doc.
func (d *Doc) Document() Document {
	doc := Document{Schema: SchemaVersion, Blocks: make([]BlockJSON, 0, len(d.blocks))}
	for _, b := range d.blocks {
		doc.Blocks = append(doc.Blocks, b.blockJSON())
	}
	return doc
}

// SchemaVersion identifies the JSON result schema emitted by JSON().
const SchemaVersion = "obmsim.result/v1"

// Document is the top-level machine-readable result: a schema tag plus
// the typed blocks. It round-trips through encoding/json.
type Document struct {
	Schema string      `json:"schema"`
	Blocks []BlockJSON `json:"blocks"`
}

// BlockJSON is the wire form of one block; Kind selects which fields
// are populated ("table", "grid", "heatmap", "series", "note", "text").
type BlockJSON struct {
	Kind    string      `json:"kind"`
	Title   string      `json:"title,omitempty"`
	Headers []string    `json:"headers,omitempty"`
	Rows    [][]string  `json:"rows,omitempty"`
	Cells   [][]int     `json:"cells,omitempty"`
	Values  [][]float64 `json:"values,omitempty"`
	Labels  []string    `json:"labels,omitempty"`
	Series  []float64   `json:"series,omitempty"`
	Unit    string      `json:"unit,omitempty"`
	Text    string      `json:"text,omitempty"`
}

// multi concatenates several Results into one.
type multi struct {
	parts []Result
}

func (m multi) Render() string {
	var sb strings.Builder
	for i, p := range m.parts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.Render())
	}
	return sb.String()
}

func (m multi) CSV() string {
	var sb strings.Builder
	for i, p := range m.parts {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(p.CSV())
	}
	return sb.String()
}

// JSON implements Result: a JSON array of the parts' documents.
func (m multi) JSON() ([]byte, error) {
	parts := make([]json.RawMessage, len(m.parts))
	for i, p := range m.parts {
		b, err := p.JSON()
		if err != nil {
			return nil, err
		}
		parts[i] = b
	}
	return json.Marshal(parts)
}

// text is a Result that is plain prose in both textual forms.
type text string

func (t text) Render() string { return string(t) }
func (t text) CSV() string    { return string(t) }
func (t text) JSON() ([]byte, error) {
	return json.Marshal(Document{Schema: SchemaVersion, Blocks: []BlockJSON{{Kind: "text", Text: string(t)}}})
}
