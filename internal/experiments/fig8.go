package experiments

import (
	"fmt"

	"obm/internal/mapping"
)

func init() { register(fig8{}) }

// fig8 reproduces Figure 8: the sort-select-swap mapping of C1 (a) and
// the per-application APL comparison against Global (b).
type fig8 struct{}

func (fig8) ID() string    { return "fig8" }
func (fig8) Title() string { return "Figure 8: SSS mapping result and APL comparison of C1" }

// Fig8Result pairs the SSS grid with the per-application APLs of both
// mappers.
type Fig8Result struct {
	Grid                [][]int
	SSSAPLs, GlobalAPLs []float64
	SSSMax, GlobalMax   float64
}

func (f fig8) Run(o Options) (Result, error) {
	p, err := problemFor("C1")
	if err != nil {
		return nil, err
	}
	sm, err := mapping.MapAndCheck(mapping.SortSelectSwap{}, p)
	if err != nil {
		return nil, err
	}
	gm, err := mapping.MapAndCheck(mapping.Global{}, p)
	if err != nil {
		return nil, err
	}
	evS := p.Evaluate(sm)
	evG := p.Evaluate(gm)
	return &Fig8Result{
		Grid:       p.AppGrid(sm),
		SSSAPLs:    evS.APLs,
		GlobalAPLs: evG.APLs,
		SSSMax:     evS.MaxAPL,
		GlobalMax:  evG.MaxAPL,
	}, nil
}

// Render implements Result.
func (r *Fig8Result) Render() string {
	s := renderGrid("Figure 8a: SSS mapping result of C1 (cell = application ID)", r.Grid)
	t := newTable("Figure 8b: per-application APL comparison (cycles)",
		"App", "Global", "SSS", "delta")
	for i := range r.SSSAPLs {
		t.addRow(fmt.Sprint(i+1),
			fmt.Sprintf("%.2f", r.GlobalAPLs[i]),
			fmt.Sprintf("%.2f", r.SSSAPLs[i]),
			fmt.Sprintf("%+.2f", r.SSSAPLs[i]-r.GlobalAPLs[i]))
	}
	s += "\n" + t.Render()
	s += fmt.Sprintf("\nmax-APL: Global %.2f -> SSS %.2f (%.2f%% lower); SSS APLs nearly equal\n",
		r.GlobalMax, r.SSSMax, 100*(r.GlobalMax-r.SSSMax)/r.GlobalMax)
	return s
}

// CSV implements Result.
func (r *Fig8Result) CSV() string {
	t := newTable("", "app", "global_apl", "sss_apl")
	for i := range r.SSSAPLs {
		t.addRow(fmt.Sprint(i+1), fmt.Sprintf("%.4f", r.GlobalAPLs[i]), fmt.Sprintf("%.4f", r.SSSAPLs[i]))
	}
	return t.CSV()
}
