package experiments

import (
	"context"
	"fmt"

	"obm/internal/mapping"
	"obm/internal/sim"
)

func init() { register(fig8{}) }

// fig8 reproduces Figure 8: the sort-select-swap mapping of C1 (a) and
// the per-application APL comparison against Global (b).
type fig8 struct{}

func (fig8) ID() string    { return "fig8" }
func (fig8) Title() string { return "Figure 8: SSS mapping result and APL comparison of C1" }

// Fig8Result pairs the SSS grid with the per-application APLs of both
// mappers.
type Fig8Result struct {
	Grid                [][]int
	SSSAPLs, GlobalAPLs []float64
	SSSMax, GlobalMax   float64
}

func (f fig8) Run(ctx context.Context, o Options) (Result, error) {
	// Evaluate the two mappers as independent jobs; each builds its own
	// Problem so the fan-out shares nothing.
	type eval struct {
		grid   [][]int
		apls   []float64
		maxAPL float64
	}
	mappers := []mapping.Mapper{mapping.Global{}, mapping.SortSelectSwap{}}
	evs, err := sim.RunReplicas(ctx, len(mappers), 0, func(ctx context.Context, i int) (eval, error) {
		p, err := problemFor("C1")
		if err != nil {
			return eval{}, err
		}
		mp, ev, err := mapEval(ctx, p, mappers[i])
		if err != nil {
			return eval{}, err
		}
		out := eval{apls: ev.APLs, maxAPL: ev.MaxAPL}
		if _, isSSS := mappers[i].(mapping.SortSelectSwap); isSSS {
			out.grid = p.AppGrid(mp)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Grid:       evs[1].grid,
		SSSAPLs:    evs[1].apls,
		GlobalAPLs: evs[0].apls,
		SSSMax:     evs[1].maxAPL,
		GlobalMax:  evs[0].maxAPL,
	}, nil
}

func (r *Fig8Result) doc() *Doc {
	d := newDoc()
	d.renderOnly(&Grid{Title: "Figure 8a: SSS mapping result of C1 (cell = application ID)", Cells: r.Grid})
	rt := newTable("Figure 8b: per-application APL comparison (cycles)",
		"App", "Global", "SSS", "delta")
	rt.Units = "cycles"
	for i := range r.SSSAPLs {
		rt.addRow(fmt.Sprint(i+1),
			fmt.Sprintf("%.2f", r.GlobalAPLs[i]),
			fmt.Sprintf("%.2f", r.SSSAPLs[i]),
			fmt.Sprintf("%+.2f", r.SSSAPLs[i]-r.GlobalAPLs[i]))
	}
	d.renderOnly(Note("\n"))
	d.renderOnly(rt)
	d.notef("\nmax-APL: Global %.2f -> SSS %.2f (%.2f%% lower); SSS APLs nearly equal\n",
		r.GlobalMax, r.SSSMax, 100*(r.GlobalMax-r.SSSMax)/r.GlobalMax)
	ct := newTable("", "app", "global_apl", "sss_apl")
	ct.Units = "cycles"
	for i := range r.SSSAPLs {
		ct.addRow(fmt.Sprint(i+1), fmt.Sprintf("%.4f", r.GlobalAPLs[i]), fmt.Sprintf("%.4f", r.SSSAPLs[i]))
	}
	d.csvOnly(ct)
	return d
}

// Render implements Result.
func (r *Fig8Result) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *Fig8Result) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *Fig8Result) JSON() ([]byte, error) { return r.doc().JSON() }
