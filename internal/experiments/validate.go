package experiments

import (
	"context"
	"fmt"
	"math"

	"obm/internal/mapping"
	"obm/internal/sim"
)

func init() { register(validate{}) }

// validate is the substitution-validation experiment backing Section
// II.C's modelling claims: it runs the flit-level simulator under a
// mapping and compares the measured per-application APLs against the
// analytic model's predictions, and reports the measured queuing
// latency per hop (the paper observes td_q in 0..1 cycles).
type validate struct{}

func (validate) ID() string    { return "validate" }
func (validate) Title() string { return "Validation: flit-level simulator vs analytic latency model" }

// ValidateRow compares one application.
type ValidateRow struct {
	App             int
	Model, Measured float64
	Packets         int64
}

// ValidateResult is the per-config comparison.
type ValidateResult struct {
	Config        string
	Mapper        string
	Rows          []ValidateRow
	QueuingPerHop float64
	MeanAbsErr    float64
}

func (v validate) Run(ctx context.Context, o Options) (Result, error) {
	sp, err := o.Spec("C1")
	if err != nil {
		return nil, err
	}
	var parts []Result
	for _, cfg := range sp.Configs {
		p, err := problemFor(cfg)
		if err != nil {
			return nil, err
		}
		m, pred, err := mapEval(ctx, p, mapping.SortSelectSwap{})
		if err != nil {
			return nil, err
		}
		scfg := sim.DefaultRateDrivenConfig()
		scfg.Seed = sp.Seed + 5
		scfg.NocWorkers = o.Workers
		if o.Quick {
			scfg.MeasureCycles = 50_000
		}
		sr, err := sim.RateDriven(ctx, p, m, scfg)
		if err != nil {
			return nil, err
		}
		res := &ValidateResult{Config: cfg, Mapper: "SSS", QueuingPerHop: sr.Net.AvgQueuingPerHop()}
		for a := 0; a < p.NumApps(); a++ {
			row := ValidateRow{App: a + 1, Model: pred.APLs[a], Measured: sr.AppAPL[a]}
			if a < len(sr.Net.ByApp) {
				row.Packets = sr.Net.ByApp[a].Packets
			}
			res.Rows = append(res.Rows, row)
			res.MeanAbsErr += math.Abs(row.Measured - row.Model)
		}
		res.MeanAbsErr /= float64(len(res.Rows))
		parts = append(parts, res)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return multi{parts: parts}, nil
}

func (r *ValidateResult) table() *Table {
	t := newTable(fmt.Sprintf("Model validation on %s under %s", r.Config, r.Mapper),
		"App", "model APL", "measured APL", "error", "packets")
	for _, row := range r.Rows {
		t.addRow(fmt.Sprint(row.App),
			fmt.Sprintf("%.2f", row.Model),
			fmt.Sprintf("%.2f", row.Measured),
			fmt.Sprintf("%+.2f", row.Measured-row.Model),
			fmt.Sprint(row.Packets))
	}
	return t
}

func (r *ValidateResult) doc() *Doc {
	return newDoc().add(r.table()).
		notef("\nmean |error| %.2f cycles; measured queuing %.3f cycles/hop (paper observes 0..1)\n",
			r.MeanAbsErr, r.QueuingPerHop)
}

// Render implements Result.
func (r *ValidateResult) Render() string { return r.doc().Render() }

// CSV implements Result.
func (r *ValidateResult) CSV() string { return r.doc().CSV() }

// JSON implements Result.
func (r *ValidateResult) JSON() ([]byte, error) { return r.doc().JSON() }
