package experiments

import (
	"context"
	"obm/internal/power"
	"obm/internal/sim"
)

func init() { register(fig11{}) }

// fig11 reproduces Figure 11: dynamic NoC power of the four mapping
// methods, measured by running the flit-level simulator under each
// mapping and feeding the flit-activity counts to the DSENT-style power
// model. The paper reports SSS within 2.7% of Global.
type fig11 struct{}

func (fig11) ID() string    { return "fig11" }
func (fig11) Title() string { return "Figure 11: dynamic NoC power comparison" }

func (f fig11) Run(ctx context.Context, o Options) (Result, error) {
	// Simulation is the expensive part; the paper's power story is the
	// same on every configuration, so the default set is trimmed.
	sp, err := o.Spec("C1", "C3", "C5", "C7")
	if err != nil {
		return nil, err
	}
	cfgs := sp.Configs
	if o.Quick {
		if len(o.Configs) == 0 {
			cfgs = []string{"C1", "C5"}
		}
	}
	mappers := sp.StandardMappers()
	res := &MapperSeries{
		Caption:    "Figure 11: dynamic NoC power normalized to Global",
		Configs:    cfgs,
		Unit:       "normalized W",
		Normalized: true,
		PaperNote:  "paper: SSS overhead <2.7% vs Global, slightly better than MC and SA",
	}
	for _, m := range mappers {
		res.Mappers = append(res.Mappers, shortName(m))
	}
	scfg := sim.DefaultRateDrivenConfig()
	scfg.Seed = o.Seed + 11
	scfg.NocWorkers = o.Workers
	if o.Quick {
		scfg.MeasureCycles = 40_000
	}
	pparams := power.Default45nm()
	res.Values = make([][]float64, len(mappers))
	for mi := range mappers {
		res.Values[mi] = make([]float64, len(cfgs))
	}
	err = parallelConfigs(ctx, cfgs, func(ci int, cfg string) error {
		for mi, m := range mappers {
			p, err := problemFor(cfg)
			if err != nil {
				return err
			}
			mp, _, err := mapEval(ctx, p, m)
			if err != nil {
				return err
			}
			sr, err := sim.RateDriven(ctx, p, mp, scfg)
			if err != nil {
				return err
			}
			msh := p.Model().Mesh()
			rep, err := power.Estimate(pparams, sr.Net, msh.NumTiles(),
				power.MeshLinkCount(msh.Rows(), msh.Cols()))
			if err != nil {
				return err
			}
			res.Values[mi][ci] = rep.DynamicW
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
