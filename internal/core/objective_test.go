package core

import (
	"math"
	"strings"
	"testing"

	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

func objTestProblem(t testing.TB) *Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	rng := stats.NewRand(42)
	w := &workload.Workload{Name: "obj"}
	for a := 0; a < 4; a++ {
		app := workload.Application{Name: "a"}
		for j := 0; j < 4; j++ {
			c := 1 + rng.Float64()*10
			app.Threads = append(app.Threads, workload.Thread{CacheRate: c, MemRate: 0.3 * c})
		}
		w.Apps = append(w.Apps, app)
	}
	return MustNewProblem(lm, w)
}

// TestObjectivesMatchEvaluation: each base objective computed from the
// numerators agrees with the corresponding Evaluation metric (the
// reporting path), bit-for-bit for max/dev/global.
func TestObjectivesMatchEvaluation(t *testing.T) {
	p := objTestProblem(t)
	rng := stats.NewRand(7)
	num := make([]float64, p.NumApps())
	for trial := 0; trial < 50; trial++ {
		m := RandomMapping(p.N(), rng)
		ev := p.Evaluate(m)
		p.Numerators(m, num)
		if got := (MaxAPL{}).Value(p, num); got != ev.MaxAPL {
			t.Fatalf("MaxAPL objective %v != Evaluation %v", got, ev.MaxAPL)
		}
		if got := (DevAPL{}).Value(p, num); got != ev.DevAPL {
			t.Fatalf("DevAPL objective %v != Evaluation %v", got, ev.DevAPL)
		}
		if got := (GAPL{}).Value(p, num); math.Abs(got-ev.GlobalAPL) > 1e-12 {
			t.Fatalf("GAPL objective %v != Evaluation %v", got, ev.GlobalAPL)
		}
		if got := (MinMaxRatio{}).Value(p, num); math.Abs(got-(1-ev.MinMaxRatio)) > 1e-12 {
			t.Fatalf("MinMaxRatio cost %v != 1-ratio %v", got, 1-ev.MinMaxRatio)
		}
	}
}

// TestObjectiveValueWith: the substitution path equals Value on copied
// numerators, with later duplicate entries winning.
func TestObjectiveValueWith(t *testing.T) {
	p := objTestProblem(t)
	rng := stats.NewRand(11)
	m := RandomMapping(p.N(), rng)
	num := make([]float64, p.NumApps())
	p.Numerators(m, num)
	objs := append(Objectives(), Weighted{Max: 1, Dev: 2.5})
	apps := []int{1, 3, 1} // app 1 listed twice; the last entry wins
	trial := []float64{num[1] * 2, num[3] * 0.5, num[1] * 3}
	sub := append([]float64(nil), num...)
	sub[1] = trial[2]
	sub[3] = trial[1]
	for _, o := range objs {
		want := o.Value(p, sub)
		got := o.ValueWith(p, num, apps, trial)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: ValueWith %v != Value on substituted nums %v", o.Name(), got, want)
		}
	}
}

// TestScorerMatchesScalarPaths: Scorer.Score equals the allocation-free
// Problem scalar paths and allocates nothing.
func TestScorerMatchesScalarPaths(t *testing.T) {
	p := objTestProblem(t)
	rng := stats.NewRand(3)
	maxSc := p.Scorer(nil)
	gSc := p.Scorer(GAPL{})
	for trial := 0; trial < 20; trial++ {
		m := RandomMapping(p.N(), rng)
		if got, want := maxSc.Score(m), p.MaxAPL(m); got != want {
			t.Fatalf("Scorer(max) %v != Problem.MaxAPL %v", got, want)
		}
		if got, want := gSc.Score(m), p.GlobalAPL(m); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Scorer(gapl) %v != Problem.GlobalAPL %v", got, want)
		}
	}
	m := IdentityMapping(p.N())
	if allocs := testing.AllocsPerRun(100, func() { maxSc.Score(m) }); allocs != 0 {
		t.Errorf("Scorer.Score allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.MaxAPL(m) }); allocs != 0 {
		t.Errorf("Problem.MaxAPL allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { p.GlobalAPL(m) }); allocs != 0 {
		t.Errorf("Problem.GlobalAPL allocates %v per run, want 0", allocs)
	}
}

// TestRandomMappingIntoMatchesRandomMapping: the in-place variant draws
// the identical permutation from an equal generator state.
func TestRandomMappingIntoMatchesRandomMapping(t *testing.T) {
	for _, n := range []int{1, 2, 16, 64} {
		a := RandomMapping(n, stats.NewRand(99))
		b := make(Mapping, n)
		RandomMappingInto(b, stats.NewRand(99))
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("n=%d: RandomMappingInto diverges at %d: %v vs %v", n, j, a[j], b[j])
			}
		}
	}
}

func TestParseObjective(t *testing.T) {
	cases := []struct {
		in   string
		want Objective
	}{
		{"", DefaultObjective},
		{"max", MaxAPL{}},
		{"MaxAPL", MaxAPL{}},
		{"dev", DevAPL{}},
		{"dev-apl", DevAPL{}},
		{"global", GAPL{}},
		{"gapl", GAPL{}},
		{"ratio", MinMaxRatio{}},
		{"minmax", MinMaxRatio{}},
		{"weighted:max=1,dev=2", Weighted{Max: 1, Dev: 2}},
		{"weighted:global=0.5,ratio=3", Weighted{Global: 0.5, Ratio: 3}},
	}
	for _, c := range cases {
		got, err := ParseObjective(c.in)
		if err != nil {
			t.Errorf("ParseObjective(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseObjective(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"bogus", "weighted:", "weighted:max", "weighted:max=x", "weighted:foo=1", "weighted:max=0"} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) accepted", bad)
		}
	}
}

// TestObjectiveFingerprintsDistinct: every named objective (and a
// weighted composite) carries a distinct fingerprint, and the default
// resolves to max-APL.
func TestObjectiveFingerprintsDistinct(t *testing.T) {
	objs := append(Objectives(), Weighted{Max: 1, Dev: 2}, Weighted{Max: 1, Dev: 3})
	seen := map[string]string{}
	for _, o := range objs {
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("objectives %s and %s share fingerprint %q", prev, o.Name(), fp)
		}
		seen[fp] = o.Name()
	}
	if !IsDefaultObjective(nil) || !IsDefaultObjective(MaxAPL{}) || IsDefaultObjective(DevAPL{}) {
		t.Error("IsDefaultObjective wrong")
	}
	if ObjectiveOrDefault(nil) != DefaultObjective {
		t.Error("ObjectiveOrDefault(nil) != DefaultObjective")
	}
	if !strings.Contains((Weighted{Max: 1, Dev: 2}).Fingerprint(), "max=1") {
		t.Error("weighted fingerprint misses weights")
	}
}

// TestGAPLObjectiveAgreesWithGlobalOptimum: optimizing GAPL and the
// g-APL metric are the same thing — on any mapping the cost equals the
// reported metric (denominator is mapping-independent).
func TestGAPLObjectiveZeroRate(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(2, 2), model.DefaultParams())
	w := &workload.Workload{Name: "idle", Apps: []workload.Application{{
		Name:    "z",
		Threads: make([]workload.Thread, 4),
	}}}
	p := MustNewProblem(lm, w)
	num := make([]float64, 1)
	if v := (GAPL{}).Value(p, num); v != 0 {
		t.Errorf("zero-rate GAPL = %v", v)
	}
	if v := (MaxAPL{}).Value(p, num); v != 0 {
		t.Errorf("zero-rate MaxAPL = %v", v)
	}
	if v := (MinMaxRatio{}).Value(p, num); v != 0 {
		t.Errorf("zero-rate MinMaxRatio cost = %v", v)
	}
	if v := (DevAPL{}).Value(p, num); v != 0 {
		t.Errorf("zero-rate DevAPL = %v", v)
	}
}
