package core

import (
	"testing"
	"testing/quick"

	"obm/internal/stats"
)

// TestEvaluateBatchMatchesEvaluate pins the batch evaluator to the
// scalar path with a quick.Check property: for any seed and batch
// size, every objective scores every mapping of the batch to exactly
// (==, not approximately) the value the per-mapping Scorer produces —
// which TestObjectivesMatchEvaluation in turn pins to Evaluate. Both
// the SoA table path and the on-the-fly fallback are checked.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	p := objTestProblem(t)
	objs := append(Objectives(), Weighted{Max: 1, Dev: 2.5}, nil)
	property := func(seed uint64, size uint8) bool {
		batch := int(size%32) + 1
		for _, obj := range objs {
			be := p.BatchEvaluator(obj)
			sc := p.Scorer(obj)
			fallback := p.BatchEvaluator(obj)
			fallback.cost = nil // force the large-N path
			rng := stats.NewRand(seed)
			ms := make([]Mapping, batch)
			for k := range ms {
				ms[k] = RandomMapping(p.N(), rng)
			}
			out := make([]float64, batch)
			outFB := make([]float64, batch)
			be.EvaluateBatch(ms, out)
			fallback.EvaluateBatch(ms, outFB)
			for k, m := range ms {
				want := sc.Score(m)
				if out[k] != want {
					t.Logf("obj %v: batch[%d] = %v, scorer = %v", obj, k, out[k], want)
					return false
				}
				if outFB[k] != want {
					t.Logf("obj %v: fallback[%d] = %v, scorer = %v", obj, k, outFB[k], want)
					return false
				}
				if got := be.Score(m); got != want {
					t.Logf("obj %v: Score(%d) = %v, scorer = %v", obj, k, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateBatchEvaluateParity spot-checks against Evaluate's
// reported MaxAPL directly (the default objective), closing the loop
// batch -> scorer -> Evaluate with an end-to-end comparison.
func TestEvaluateBatchEvaluateParity(t *testing.T) {
	p := objTestProblem(t)
	be := p.BatchEvaluator(nil)
	rng := stats.NewRand(99)
	ms := make([]Mapping, 16)
	for k := range ms {
		ms[k] = RandomMapping(p.N(), rng)
	}
	out := make([]float64, len(ms))
	be.EvaluateBatch(ms, out)
	for k, m := range ms {
		if want := p.Evaluate(m).MaxAPL; out[k] != want {
			t.Errorf("batch[%d] = %v, Evaluate.MaxAPL = %v", k, out[k], want)
		}
	}
}

// TestEvaluateBatchNoAlloc: steady-state batches allocate nothing.
func TestEvaluateBatchNoAlloc(t *testing.T) {
	p := objTestProblem(t)
	be := p.BatchEvaluator(nil)
	rng := stats.NewRand(5)
	ms := make([]Mapping, 8)
	for k := range ms {
		ms[k] = RandomMapping(p.N(), rng)
	}
	out := make([]float64, len(ms))
	be.EvaluateBatch(ms, out) // warm the numerator buffer
	if allocs := testing.AllocsPerRun(50, func() { be.EvaluateBatch(ms, out) }); allocs != 0 {
		t.Errorf("EvaluateBatch allocates %v per run, want 0", allocs)
	}
}
