package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// This file lifts the single-scalar objective assumption into a
// set-valued result model: a VectorObjective names a tuple of scalar
// Objectives scored together, Pareto dominance and crowding distance
// give multi-objective mappers their selection primitives, and
// ParetoSet/ParetoArchive carry a mapper's frontier with the same
// determinism guarantees point-valued results have — canonical order,
// content fingerprints, and pure value semantics — so every layer
// above (artifact encoding, scenario cache, experiments, service) can
// treat a front exactly like it treats a mapping.

// VectorObjective is a named tuple of scalar Objectives scored
// together. All components share the Objective cost convention (lower
// is better), so dominance is uniformly "component-wise ≤, somewhere
// <". The zero value is invalid; construct with NewVectorObjective or
// take DefaultVectorObjective.
type VectorObjective struct {
	components []Objective
}

// NewVectorObjective builds a vector objective over the given
// components (nil entries resolve to the default max-APL). At least
// two components are required — one would be a scalar objective.
func NewVectorObjective(components ...Objective) (VectorObjective, error) {
	if len(components) < 2 {
		return VectorObjective{}, fmt.Errorf("core: vector objective needs >= 2 components, got %d", len(components))
	}
	out := make([]Objective, len(components))
	for i, o := range components {
		out[i] = ObjectiveOrDefault(o)
	}
	return VectorObjective{components: out}, nil
}

// DefaultVectorObjective is the repository's standard latency/balance/
// energy trade-off: {max-APL, dev-APL, energy}.
func DefaultVectorObjective() VectorObjective {
	return VectorObjective{components: []Objective{MaxAPL{}, DevAPL{}, Energy{}}}
}

// VectorOrDefault resolves the zero value to DefaultVectorObjective.
func VectorOrDefault(v VectorObjective) VectorObjective {
	if v.IsZero() {
		return DefaultVectorObjective()
	}
	return v
}

// IsZero reports whether v is the (invalid) zero value.
func (v VectorObjective) IsZero() bool { return len(v.components) == 0 }

// Dim returns the number of components.
func (v VectorObjective) Dim() int { return len(v.components) }

// Components returns a copy of the component objectives in order.
func (v VectorObjective) Components() []Objective {
	return append([]Objective(nil), v.components...)
}

// Name is the human label, e.g. "vec(max-APL,dev-APL,energy)".
func (v VectorObjective) Name() string {
	names := make([]string, len(v.components))
	for i, o := range v.components {
		names[i] = o.Name()
	}
	return "vec(" + strings.Join(names, ",") + ")"
}

// Fingerprint is the stable content key covering every component, in
// order — order matters, because it fixes the meaning of each vector
// slot in encoded artifacts.
func (v VectorObjective) Fingerprint() string {
	fps := make([]string, len(v.components))
	for i, o := range v.components {
		fps[i] = o.Fingerprint()
	}
	return "vec(" + strings.Join(fps, ",") + ")"
}

// VectorScorer evaluates every component of a vector objective over
// many mappings of one problem, sharing one numerator pass per
// mapping. Not safe for concurrent use; give each goroutine its own.
type VectorScorer struct {
	p     *Problem
	comps []Objective
	num   []float64
}

// VectorScorer returns a reusable scorer for v (the zero value means
// DefaultVectorObjective) on p.
func (p *Problem) VectorScorer(v VectorObjective) *VectorScorer {
	return &VectorScorer{
		p:     p,
		comps: VectorOrDefault(v).components,
		num:   make([]float64, p.NumApps()),
	}
}

// Dim returns the number of vector components.
func (s *VectorScorer) Dim() int { return len(s.comps) }

// Score fills out (len == Dim) with the component costs of mapping m
// and returns it; out == nil allocates. One Numerators pass feeds
// every component.
func (s *VectorScorer) Score(m Mapping, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(s.comps))
	}
	s.p.Numerators(m, s.num)
	for i, o := range s.comps {
		out[i] = o.Value(s.p, s.num)
	}
	return out
}

// Dominates reports whether cost vector a Pareto-dominates b: a is no
// worse in every component and strictly better in at least one (lower
// is better throughout). Vectors of different lengths never dominate
// each other.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// vectorsEqual reports component-wise equality.
func vectorsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NonDominatedFronts partitions vectors into successive non-dominated
// fronts (Deb's fast non-dominated sort): fronts[0] is the Pareto
// front of the whole set, fronts[1] the front once fronts[0] is
// removed, and so on. Indices are ascending within each front, so the
// partition is deterministic.
func NonDominatedFronts(vectors [][]float64) [][]int {
	n := len(vectors)
	if n == 0 {
		return nil
	}
	domCount := make([]int, n)    // how many vectors dominate i
	dominated := make([][]int, n) // indices i dominates
	var first []int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case Dominates(vectors[i], vectors[j]):
				dominated[i] = append(dominated[i], j)
				domCount[j]++
			case Dominates(vectors[j], vectors[i]):
				dominated[j] = append(dominated[j], i)
				domCount[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominated[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next)
		cur = next
	}
	return fronts
}

// CrowdingDistances returns NSGA-II crowding distances for the given
// front (indices into vectors): boundary members of every component
// get +Inf, interior members the sum of normalized neighbour gaps.
// Components with zero spread contribute nothing. The result is
// indexed like front.
func CrowdingDistances(vectors [][]float64, front []int) []float64 {
	k := len(front)
	dist := make([]float64, k)
	if k == 0 {
		return dist
	}
	dim := len(vectors[front[0]])
	order := make([]int, k) // positions into front
	for d := 0; d < dim; d++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := vectors[front[order[a]]][d], vectors[front[order[b]]][d]
			if va != vb {
				return va < vb
			}
			return front[order[a]] < front[order[b]]
		})
		lo := vectors[front[order[0]]][d]
		hi := vectors[front[order[k-1]]][d]
		dist[order[0]] = math.Inf(1)
		dist[order[k-1]] = math.Inf(1)
		if spread := hi - lo; spread > 0 {
			for x := 1; x < k-1; x++ {
				prev := vectors[front[order[x-1]]][d]
				next := vectors[front[order[x+1]]][d]
				dist[order[x]] += (next - prev) / spread
			}
		}
	}
	return dist
}

// ParetoMember is one mapping of a Pareto set with its cost vector
// under the set's VectorObjective (component order matches the
// objective's).
type ParetoMember struct {
	Mapping Mapping
	Vector  []float64
}

// Clone returns an independent deep copy.
func (m ParetoMember) Clone() ParetoMember {
	return ParetoMember{
		Mapping: m.Mapping.Clone(),
		Vector:  append([]float64(nil), m.Vector...),
	}
}

// ParetoSet is a mutually non-dominated set of mappings in canonical
// order: ascending lexicographically by cost vector, ties broken by
// mapping. Canonical order is what makes a front content-addressable —
// two runs that discover the same trade-offs in different order store
// and fingerprint identically.
type ParetoSet struct {
	Members []ParetoMember
}

// Len returns the number of members.
func (s ParetoSet) Len() int { return len(s.Members) }

// Clone returns an independent deep copy.
func (s ParetoSet) Clone() ParetoSet {
	out := ParetoSet{Members: make([]ParetoMember, len(s.Members))}
	for i, m := range s.Members {
		out.Members[i] = m.Clone()
	}
	return out
}

// sortCanonical puts members into canonical order in place.
func (s ParetoSet) sortCanonical() {
	sort.SliceStable(s.Members, func(a, b int) bool {
		return compareMembers(s.Members[a], s.Members[b]) < 0
	})
}

// compareMembers orders lexicographically by vector, then by mapping.
func compareMembers(a, b ParetoMember) int {
	for i := 0; i < len(a.Vector) && i < len(b.Vector); i++ {
		if a.Vector[i] != b.Vector[i] {
			if a.Vector[i] < b.Vector[i] {
				return -1
			}
			return 1
		}
	}
	if len(a.Vector) != len(b.Vector) {
		if len(a.Vector) < len(b.Vector) {
			return -1
		}
		return 1
	}
	for i := 0; i < len(a.Mapping) && i < len(b.Mapping); i++ {
		if a.Mapping[i] != b.Mapping[i] {
			if a.Mapping[i] < b.Mapping[i] {
				return -1
			}
			return 1
		}
	}
	if len(a.Mapping) != len(b.Mapping) {
		if len(a.Mapping) < len(b.Mapping) {
			return -1
		}
		return 1
	}
	return 0
}

// Validate reports an error unless every member is a valid
// permutation of n tiles, all vectors share one dimension, members
// are mutually non-dominated, and the set is in canonical order.
func (s ParetoSet) Validate(n int) error {
	if len(s.Members) == 0 {
		return fmt.Errorf("core: empty pareto set")
	}
	dim := len(s.Members[0].Vector)
	for i, m := range s.Members {
		if err := m.Mapping.Validate(n); err != nil {
			return fmt.Errorf("core: pareto member %d: %w", i, err)
		}
		if len(m.Vector) != dim {
			return fmt.Errorf("core: pareto member %d has %d-dim vector, want %d", i, len(m.Vector), dim)
		}
	}
	for i := range s.Members {
		for j := range s.Members {
			if i != j && Dominates(s.Members[i].Vector, s.Members[j].Vector) {
				return fmt.Errorf("core: pareto member %d dominates member %d", i, j)
			}
		}
		if i > 0 && compareMembers(s.Members[i-1], s.Members[i]) > 0 {
			return fmt.Errorf("core: pareto set not in canonical order at member %d", i)
		}
	}
	return nil
}

// Fingerprint returns a stable content hash of the set — mappings and
// vector bits in canonical order — for golden determinism tests and
// logs.
func (s ParetoSet) Fingerprint() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	wu(uint64(len(s.Members)))
	for _, m := range s.Members {
		wu(uint64(len(m.Mapping)))
		for _, t := range m.Mapping {
			wu(uint64(t))
		}
		wu(uint64(len(m.Vector)))
		for _, v := range m.Vector {
			wu(math.Float64bits(v))
		}
	}
	return fmt.Sprintf("ps%d-%016x", len(s.Members), h.Sum64())
}

// ParetoArchive is a bounded, deterministic elitist archive: it keeps
// at most capacity mutually non-dominated members, rejecting dominated
// or duplicate candidates, evicting members a new candidate dominates,
// and truncating by smallest crowding distance (ties broken by
// canonical order) when full. Mappers feed every generation through
// one archive so the final front can only improve over time.
type ParetoArchive struct {
	capacity int
	members  []ParetoMember
}

// NewParetoArchive returns an empty archive holding at most capacity
// members (minimum 1).
func NewParetoArchive(capacity int) *ParetoArchive {
	if capacity < 1 {
		capacity = 1
	}
	return &ParetoArchive{capacity: capacity}
}

// Len returns the current member count.
func (a *ParetoArchive) Len() int { return len(a.members) }

// Capacity returns the archive bound.
func (a *ParetoArchive) Capacity() int { return a.capacity }

// Add offers (m, vec) to the archive, cloning both on acceptance. It
// returns false when an existing member dominates or equals the
// candidate; otherwise it evicts every member the candidate dominates,
// inserts it in canonical position, and truncates to capacity by
// dropping the member with the smallest crowding distance.
func (a *ParetoArchive) Add(m Mapping, vec []float64) bool {
	for _, e := range a.members {
		if Dominates(e.Vector, vec) || vectorsEqual(e.Vector, vec) {
			return false
		}
	}
	kept := a.members[:0]
	for _, e := range a.members {
		if !Dominates(vec, e.Vector) {
			kept = append(kept, e)
		}
	}
	a.members = append(kept, ParetoMember{Mapping: m.Clone(), Vector: append([]float64(nil), vec...)})
	ParetoSet{Members: a.members}.sortCanonical()
	for len(a.members) > a.capacity {
		a.truncateOne()
	}
	return true
}

// truncateOne removes the member with the smallest crowding distance;
// the first such member in canonical order goes, which is
// deterministic because the members slice is kept canonical.
func (a *ParetoArchive) truncateOne() {
	vectors := make([][]float64, len(a.members))
	front := make([]int, len(a.members))
	for i, m := range a.members {
		vectors[i] = m.Vector
		front[i] = i
	}
	dist := CrowdingDistances(vectors, front)
	worst := 0
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[worst] {
			worst = i
		}
	}
	a.members = append(a.members[:worst], a.members[worst+1:]...)
}

// Set returns the archived front as a canonical ParetoSet (deep copy).
func (a *ParetoArchive) Set() ParetoSet {
	out := ParetoSet{Members: make([]ParetoMember, len(a.members))}
	for i, m := range a.members {
		out.Members[i] = m.Clone()
	}
	return out
}

// Hypervolume returns the volume of objective space dominated by
// points and bounded above by ref (minimization: a point contributes
// the box [point, ref], points are clipped to ref). Exact recursive
// slicing along the last dimension; fronts in this repository are
// small (tens), so the worst case is irrelevant. An empty set or a
// zero-dimensional ref scores 0.
func Hypervolume(points [][]float64, ref []float64) float64 {
	d := len(ref)
	if d == 0 || len(points) == 0 {
		return 0
	}
	clipped := make([][]float64, 0, len(points))
	for _, p := range points {
		if len(p) != d {
			continue
		}
		q := make([]float64, d)
		for i := range q {
			q[i] = math.Min(p[i], ref[i])
		}
		clipped = append(clipped, q)
	}
	return hvSlice(clipped, ref)
}

// hvSlice computes the hypervolume of points against ref over the
// first len(ref) dimensions.
func hvSlice(points [][]float64, ref []float64) float64 {
	d := len(ref)
	if len(points) == 0 {
		return 0
	}
	if d == 1 {
		best := points[0][0]
		for _, p := range points[1:] {
			if p[0] < best {
				best = p[0]
			}
		}
		if best >= ref[0] {
			return 0
		}
		return ref[0] - best
	}
	// Sweep the last dimension: between consecutive cut values the
	// dominated (d-1)-volume is constant and equals the sub-front of
	// points already "active" (z <= cut start).
	zs := make([]float64, 0, len(points))
	for _, p := range points {
		zs = append(zs, p[d-1])
	}
	sort.Float64s(zs)
	uniq := zs[:0]
	for i, z := range zs {
		if i == 0 || z != uniq[len(uniq)-1] {
			uniq = append(uniq, z)
		}
	}
	var vol float64
	var active [][]float64
	for k, z := range uniq {
		if z >= ref[d-1] {
			break
		}
		for _, p := range points {
			if p[d-1] == z {
				active = append(active, p[:d-1])
			}
		}
		end := ref[d-1]
		if k+1 < len(uniq) && uniq[k+1] < end {
			end = uniq[k+1]
		}
		vol += hvSlice(active, ref[:d-1]) * (end - z)
	}
	return vol
}
