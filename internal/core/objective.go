package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Objective is a pluggable optimization target for the OBM problem. The
// paper's Section III.A weighs several balance metrics before settling
// on the max-APL; this interface lifts that choice out of the mappers so
// any of the alternatives (and composites of them) can be *optimized*,
// not just reported.
//
// Every objective is a pure function of the per-application APL
// numerators — application i's total packet latency num[i] = sum over
// its threads of c_j*TC + m_j*TM — because all of the paper's candidate
// metrics are. That shared domain is what makes the incremental delta
// API possible: a swap or window move touches O(window) threads, so a
// mapper updates O(window) numerators and re-scores in O(A) instead of
// re-walking all N threads.
//
// Values are costs: lower is always better, and mappers minimize
// unconditionally. Metrics that want maximizing express themselves as
// costs (MinMaxRatio scores 1 - ratio). Implementations must be
// comparable value types (no slices/maps) so mapper configurations
// remain comparable, and must be deterministic pure functions.
type Objective interface {
	// Name is the human label used in mapper names and experiment rows.
	Name() string
	// Fingerprint is a stable content key covering the objective and all
	// of its parameters; mappers fold it into their own Fingerprint so
	// the scenario artifact cache never conflates two objectives.
	Fingerprint() string
	// Value scores per-application APL numerators (len == p.NumApps();
	// applications with zero request rate are ignored). Lower is better.
	Value(p *Problem, num []float64) float64
	// ValueWith scores as if num[apps[x]] were replaced by trial[x],
	// without mutating num. apps and trial are parallel slices and may
	// list the same application more than once (later entries win),
	// mirroring the tracker's historical maxAPLWith contract. This is
	// the O(A) incremental path swap/window moves ride.
	ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64
}

// DefaultObjective is the paper's objective, the max-APL (eq. 7). A nil
// Objective everywhere in this repository means DefaultObjective, so
// zero-value mapper configurations keep the published behavior.
var DefaultObjective Objective = MaxAPL{}

// ObjectiveOrDefault resolves nil to DefaultObjective.
func ObjectiveOrDefault(o Objective) Objective {
	if o == nil {
		return DefaultObjective
	}
	return o
}

// IsDefaultObjective reports whether o is the paper's max-APL objective
// (nil counts). Mappers use it to keep their default fingerprints
// byte-identical to the pre-objective era.
func IsDefaultObjective(o Objective) bool {
	return o == nil || o == DefaultObjective
}

// effNum returns application i's effective numerator under the
// ValueWith substitution: the last matching entry of apps wins, else
// num[i].
func effNum(num []float64, apps []int, trial []float64, i int) float64 {
	for x := len(apps) - 1; x >= 0; x-- {
		if apps[x] == i {
			return trial[x]
		}
	}
	return num[i]
}

// MaxAPL is the paper's objective: the largest per-application APL
// (d_max of eq. 7). Lower is better.
type MaxAPL struct{}

// Name implements Objective.
func (MaxAPL) Name() string { return "max-APL" }

// Fingerprint implements Objective.
func (MaxAPL) Fingerprint() string { return "maxapl" }

// Value implements Objective.
func (MaxAPL) Value(p *Problem, num []float64) float64 {
	var mx float64
	for i, n := range num {
		if w := p.appWeight[i]; w > 0 {
			if apl := n / w; apl > mx {
				mx = apl
			}
		}
	}
	return mx
}

// ValueWith implements Objective.
func (MaxAPL) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	var mx float64
	for i := range num {
		if w := p.appWeight[i]; w > 0 {
			if apl := effNum(num, apps, trial, i) / w; apl > mx {
				mx = apl
			}
		}
	}
	return mx
}

// DevAPL is the population standard deviation of the active
// applications' APLs — the dev-APL the paper reports in Table 4 and
// discusses as a candidate balance objective in Section III.A. Lower is
// better; 0 is perfect balance.
type DevAPL struct{}

// Name implements Objective.
func (DevAPL) Name() string { return "dev-APL" }

// Fingerprint implements Objective.
func (DevAPL) Fingerprint() string { return "devapl" }

// Value implements Objective.
func (DevAPL) Value(p *Problem, num []float64) float64 {
	return devAPL(p, num, nil, nil)
}

// ValueWith implements Objective.
func (DevAPL) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	return devAPL(p, num, apps, trial)
}

// devAPL computes the population standard deviation of the active APLs
// with the same two-pass arithmetic as stats.StdDev over the active
// slice, so the objective agrees bit-for-bit with Evaluation.DevAPL.
func devAPL(p *Problem, num []float64, apps []int, trial []float64) float64 {
	var sum float64
	active := 0
	for i := range num {
		if w := p.appWeight[i]; w > 0 {
			sum += effNum(num, apps, trial, i) / w
			active++
		}
	}
	if active == 0 {
		return 0
	}
	mean := sum / float64(active)
	var ss float64
	for i := range num {
		if w := p.appWeight[i]; w > 0 {
			d := effNum(num, apps, trial, i)/w - mean
			ss += d * d
		}
	}
	return math.Sqrt(ss / float64(active))
}

// GAPL is the overall (global) APL: chip-wide total packet latency over
// chip-wide request volume — the objective the traditional
// performance-oriented mappers of Section II.D minimize. Lower is
// better. Optimizing it reproduces Global's goal with any of the
// iterative mappers.
type GAPL struct{}

// Name implements Objective.
func (GAPL) Name() string { return "g-APL" }

// Fingerprint implements Objective.
func (GAPL) Fingerprint() string { return "gapl" }

// Value implements Objective.
func (GAPL) Value(p *Problem, num []float64) float64 {
	if p.totalRate == 0 {
		return 0
	}
	var total float64
	for _, n := range num {
		total += n
	}
	return total / p.totalRate
}

// ValueWith implements Objective.
func (GAPL) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	if p.totalRate == 0 {
		return 0
	}
	var total float64
	for i := range num {
		total += effNum(num, apps, trial, i)
	}
	return total / p.totalRate
}

// MinMaxRatio is the min/max-APL balance ratio of Section III.A, a
// maximization metric (1 is perfect balance) expressed as the cost
// 1 - min/max so that lower is better like every other Objective. An
// instance with no active applications scores 0 (the ratio convention
// of stats.MinMaxRatio maps empty to 1).
type MinMaxRatio struct{}

// Name implements Objective.
func (MinMaxRatio) Name() string { return "minmax-ratio" }

// Fingerprint implements Objective.
func (MinMaxRatio) Fingerprint() string { return "minmaxratio" }

// Value implements Objective.
func (MinMaxRatio) Value(p *Problem, num []float64) float64 {
	return minMaxCost(p, num, nil, nil)
}

// ValueWith implements Objective.
func (MinMaxRatio) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	return minMaxCost(p, num, apps, trial)
}

func minMaxCost(p *Problem, num []float64, apps []int, trial []float64) float64 {
	mn, mx := math.Inf(1), 0.0
	active := false
	for i := range num {
		if w := p.appWeight[i]; w > 0 {
			apl := effNum(num, apps, trial, i) / w
			if apl < mn {
				mn = apl
			}
			if apl > mx {
				mx = apl
			}
			active = true
		}
	}
	if !active || mx == 0 {
		return 0
	}
	return 1 - mn/mx
}

// Weighted is a linear composite of the four base metrics — e.g.
// α·max-APL + β·dev-APL trades worst-case latency against spread, the
// energy/latency-style multi-objective blend the related NoC-mapping
// literature optimizes. Zero-weight terms cost nothing. The zero value
// scores everything 0; give at least one weight.
type Weighted struct {
	// Max, Dev, Global, Ratio weight the MaxAPL, DevAPL, GAPL and
	// MinMaxRatio costs respectively.
	Max, Dev, Global, Ratio float64
	// Energy weights the Energy cost (pJ, default 45nm parameters).
	Energy float64
}

// Name implements Objective.
func (w Weighted) Name() string { return "weighted" + w.params() }

// Fingerprint implements Objective.
func (w Weighted) Fingerprint() string { return "weighted" + w.params() }

func (w Weighted) params() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("max", w.Max)
	add("dev", w.Dev)
	add("global", w.Global)
	add("ratio", w.Ratio)
	add("energy", w.Energy)
	return "(" + strings.Join(parts, ",") + ")"
}

// Value implements Objective.
func (w Weighted) Value(p *Problem, num []float64) float64 {
	return w.ValueWith(p, num, nil, nil)
}

// ValueWith implements Objective.
func (w Weighted) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	var v float64
	if w.Max != 0 {
		v += w.Max * (MaxAPL{}).ValueWith(p, num, apps, trial)
	}
	if w.Dev != 0 {
		v += w.Dev * (DevAPL{}).ValueWith(p, num, apps, trial)
	}
	if w.Global != 0 {
		v += w.Global * (GAPL{}).ValueWith(p, num, apps, trial)
	}
	if w.Ratio != 0 {
		v += w.Ratio * (MinMaxRatio{}).ValueWith(p, num, apps, trial)
	}
	if w.Energy != 0 {
		v += w.Energy * (Energy{}).ValueWith(p, num, apps, trial)
	}
	return v
}

// Objectives returns one instance of every named (non-composite)
// objective, in presentation order.
func Objectives() []Objective {
	return []Objective{MaxAPL{}, DevAPL{}, GAPL{}, MinMaxRatio{}, Energy{}}
}

// ParseObjective resolves a command-line objective spelling:
//
//	max | maxapl          the paper's max-APL (default)
//	dev | devapl          dev-APL (population stddev)
//	global | gapl         overall APL
//	ratio | minmax        1 - min/max-APL
//	energy                dynamic NoC energy (pJ, 45nm defaults)
//	weighted:max=1,dev=2  linear composite (keys max, dev, global,
//	                      ratio, energy)
//
// The empty string parses to DefaultObjective.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "max", "maxapl", "max-apl":
		return DefaultObjective, nil
	case "dev", "devapl", "dev-apl":
		return DevAPL{}, nil
	case "global", "gapl", "g-apl":
		return GAPL{}, nil
	case "ratio", "minmax", "minmaxratio", "minmax-ratio":
		return MinMaxRatio{}, nil
	case "energy":
		return Energy{}, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(strings.TrimSpace(s)), "weighted:"); ok {
		w := Weighted{}
		for _, term := range strings.Split(rest, ",") {
			k, vs, ok := strings.Cut(strings.TrimSpace(term), "=")
			if !ok {
				return nil, fmt.Errorf("core: weighted objective term %q is not key=weight", term)
			}
			v, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				return nil, fmt.Errorf("core: weighted objective weight %q: %v", vs, err)
			}
			switch strings.TrimSpace(k) {
			case "max":
				w.Max = v
			case "dev":
				w.Dev = v
			case "global":
				w.Global = v
			case "ratio":
				w.Ratio = v
			case "energy":
				w.Energy = v
			default:
				return nil, fmt.Errorf("core: weighted objective key %q (want max, dev, global, ratio, energy)", k)
			}
		}
		if w == (Weighted{}) {
			return nil, fmt.Errorf("core: weighted objective needs at least one non-zero weight")
		}
		return w, nil
	}
	names := make([]string, 0, 5)
	for _, o := range Objectives() {
		names = append(names, o.Fingerprint())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("core: unknown objective %q (want max, dev, global, ratio, energy, or weighted:max=1,dev=2; have %s)",
		s, strings.Join(names, ", "))
}

// Scorer evaluates one objective over many mappings of one problem with
// zero per-call allocation — the scalar path batch mappers (Monte
// Carlo's per-trial scoring, the genetic per-individual fitness) use
// instead of building a full Evaluation (3 slices) per call. Not safe
// for concurrent use; give each goroutine its own.
type Scorer struct {
	p   *Problem
	obj Objective
	num []float64
}

// Scorer returns a reusable scorer for obj (nil means the default
// max-APL) on p.
func (p *Problem) Scorer(obj Objective) *Scorer {
	return &Scorer{p: p, obj: ObjectiveOrDefault(obj), num: make([]float64, p.NumApps())}
}

// Score returns the objective cost of mapping m. It allocates nothing.
func (s *Scorer) Score(m Mapping) float64 {
	s.p.Numerators(m, s.num)
	return s.obj.Value(s.p, s.num)
}

// Objective returns the objective the scorer evaluates.
func (s *Scorer) Objective() Objective { return s.obj }

// Numerators fills num (len == NumApps) with the per-application total
// packet latencies of mapping m — the shared domain every Objective
// scores. It allocates nothing.
func (p *Problem) Numerators(m Mapping, num []float64) {
	for i := range num {
		num[i] = 0
	}
	for j, t := range m {
		num[p.appOf[j]] += p.ThreadCost(j, t)
	}
}

// ObjectiveValue returns obj's cost of mapping m (nil obj means the
// default max-APL). One-shot convenience over Scorer; allocates one
// numerator slice.
func (p *Problem) ObjectiveValue(m Mapping, obj Objective) float64 {
	num := make([]float64, p.NumApps())
	p.Numerators(m, num)
	return ObjectiveOrDefault(obj).Value(p, num)
}
