package core

import (
	"math"
	"testing"
	"testing/quick"

	"obm/internal/stats"
)

// vec3 converts quick-generated arrays into cost vectors with sane
// magnitudes (finite, non-negative — the domain every Objective emits).
func vec3(a [3]float64) []float64 {
	out := make([]float64, 3)
	for i, v := range a {
		v = math.Abs(v)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		out[i] = math.Mod(v, 1000)
	}
	return out
}

// TestDominatesIrreflexiveAntisymmetric: no vector dominates itself,
// and dominance is antisymmetric — quick.Check over random vectors.
func TestDominatesIrreflexiveAntisymmetric(t *testing.T) {
	irreflexive := func(a [3]float64) bool {
		v := vec3(a)
		return !Dominates(v, v)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Fatalf("irreflexivity: %v", err)
	}
	antisymmetric := func(a, b [3]float64) bool {
		va, vb := vec3(a), vec3(b)
		return !(Dominates(va, vb) && Dominates(vb, va))
	}
	if err := quick.Check(antisymmetric, nil); err != nil {
		t.Fatalf("antisymmetry: %v", err)
	}
}

// TestDominatesTransitive: dominance chains compose. Random premises
// almost never fire, so the chain is constructed: b worsens a, c
// worsens b, and a must dominate c.
func TestDominatesTransitive(t *testing.T) {
	transitive := func(a [3]float64, d1, d2 [3]float64, i1, i2 uint8) bool {
		va := vec3(a)
		vb := append([]float64(nil), va...)
		for i := range vb {
			vb[i] += math.Abs(vec3(d1)[i])
		}
		vb[int(i1)%3] += 1 // guarantee strictness somewhere
		vc := append([]float64(nil), vb...)
		for i := range vc {
			vc[i] += math.Abs(vec3(d2)[i])
		}
		vc[int(i2)%3] += 1
		if !Dominates(va, vb) || !Dominates(vb, vc) {
			return false
		}
		return Dominates(va, vc)
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Fatalf("transitivity: %v", err)
	}
}

// TestDominatesMismatchedLengths: vectors of different dimension never
// dominate.
func TestDominatesMismatchedLengths(t *testing.T) {
	if Dominates([]float64{1}, []float64{2, 3}) || Dominates([]float64{1, 2}, []float64{3}) {
		t.Fatal("mismatched lengths must not dominate")
	}
	if Dominates(nil, nil) {
		t.Fatal("empty vectors must not dominate")
	}
}

// TestNonDominatedFronts: front 0 is exactly the non-dominated subset,
// and every later front is dominated by someone in an earlier front.
func TestNonDominatedFronts(t *testing.T) {
	vectors := [][]float64{
		{1, 5, 3},
		{2, 6, 4}, // dominated by 0
		{5, 1, 3},
		{6, 2, 4}, // dominated by 2
		{3, 3, 3},
		{7, 7, 7}, // dominated by everything above
	}
	fronts := NonDominatedFronts(vectors)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts, want 3: %v", len(fronts), fronts)
	}
	want0 := []int{0, 2, 4}
	if len(fronts[0]) != len(want0) {
		t.Fatalf("front 0 = %v, want %v", fronts[0], want0)
	}
	for i, idx := range want0 {
		if fronts[0][i] != idx {
			t.Fatalf("front 0 = %v, want %v", fronts[0], want0)
		}
	}
	// Invariant: no member of front k is dominated by a member of the
	// same or later fronts.
	for k, front := range fronts {
		for _, i := range front {
			for kk := k; kk < len(fronts); kk++ {
				for _, j := range fronts[kk] {
					if Dominates(vectors[j], vectors[i]) {
						t.Fatalf("front %d member %d dominated by front %d member %d", k, i, kk, j)
					}
				}
			}
		}
	}
}

// TestCrowdingDistances: boundary members get +Inf, interior members
// finite normalized gaps.
func TestCrowdingDistances(t *testing.T) {
	vectors := [][]float64{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	front := []int{0, 1, 2, 3, 4}
	dist := CrowdingDistances(vectors, front)
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[4], 1) {
		t.Fatalf("boundary distances not +Inf: %v", dist)
	}
	for _, i := range []int{1, 2, 3} {
		if math.IsInf(dist[i], 0) || dist[i] <= 0 {
			t.Fatalf("interior distance %d = %v, want finite positive", i, dist[i])
		}
	}
}

// TestParetoArchiveInvariant: whatever sequence of candidates is
// offered, every archive member stays mutually non-dominated, the
// capacity bound holds, and Set() validates (canonical order included).
// quick.Check drives the sequences; values are drawn from a small grid
// so duplicates and dominance actually occur.
func TestParetoArchiveInvariant(t *testing.T) {
	const n = 8
	property := func(seed uint64, picks [24]uint16) bool {
		rng := stats.NewRand(seed)
		arch := NewParetoArchive(5)
		for _, pick := range picks {
			vec := []float64{
				float64(pick % 7),
				float64((pick / 7) % 7),
				float64((pick / 49) % 7),
			}
			arch.Add(RandomMapping(n, rng), vec)
			if arch.Len() > arch.Capacity() {
				return false
			}
			set := arch.Set()
			if set.Len() == 0 {
				return false
			}
			if err := set.Validate(n); err != nil {
				t.Logf("archive invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatalf("archive invariant: %v", err)
	}
}

// TestParetoArchiveRejectsDominatedAndDuplicates: explicit small cases.
func TestParetoArchiveRejectsDominatedAndDuplicates(t *testing.T) {
	arch := NewParetoArchive(8)
	m := IdentityMapping(4)
	if !arch.Add(m, []float64{1, 2}) {
		t.Fatal("first add rejected")
	}
	if arch.Add(m, []float64{1, 2}) {
		t.Fatal("duplicate vector accepted")
	}
	if arch.Add(m, []float64{2, 3}) {
		t.Fatal("dominated candidate accepted")
	}
	if !arch.Add(m, []float64{0, 3}) {
		t.Fatal("incomparable candidate rejected")
	}
	if !arch.Add(m, []float64{0, 1}) {
		t.Fatal("dominating candidate rejected")
	}
	// {0,1} dominates both {1,2} and {0,3}: archive collapses to it.
	if got := arch.Len(); got != 1 {
		t.Fatalf("archive has %d members after dominating add, want 1", got)
	}
	if v := arch.Set().Members[0].Vector; v[0] != 0 || v[1] != 1 {
		t.Fatalf("surviving vector %v, want [0 1]", v)
	}
}

// TestParetoArchiveDeterministicTruncation: same adds in the same
// order always produce the same archive, and truncation keeps the
// boundary (extreme) members.
func TestParetoArchiveDeterministicTruncation(t *testing.T) {
	build := func() ParetoSet {
		arch := NewParetoArchive(4)
		m := IdentityMapping(4)
		// A straight line of 7 mutually non-dominated points.
		for i := 0; i < 7; i++ {
			arch.Add(m, []float64{float64(i), float64(6 - i)})
		}
		return arch.Set()
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("truncation not deterministic: %s != %s", a.Fingerprint(), b.Fingerprint())
	}
	if a.Len() != 4 {
		t.Fatalf("archive kept %d members, want 4", a.Len())
	}
	// Extremes survive truncation (infinite crowding distance).
	first, last := a.Members[0].Vector, a.Members[a.Len()-1].Vector
	if first[0] != 0 || last[0] != 6 {
		t.Fatalf("extremes evicted: first %v last %v", first, last)
	}
}

// TestHypervolume: hand-checkable cases.
func TestHypervolume(t *testing.T) {
	ref := []float64{4, 4}
	if hv := Hypervolume(nil, ref); hv != 0 {
		t.Fatalf("empty set hv = %v, want 0", hv)
	}
	if hv := Hypervolume([][]float64{{2, 2}}, ref); hv != 4 {
		t.Fatalf("single point hv = %v, want 4", hv)
	}
	// Two incomparable points: boxes 3x2 and 2x3 overlap in 2x2, so the
	// union covers 6 + 6 - 4 = 8.
	if hv := Hypervolume([][]float64{{1, 2}, {2, 1}}, ref); hv != 8 {
		t.Fatalf("two-point hv = %v, want 8", hv)
	}
	// A dominated point adds nothing.
	if hv := Hypervolume([][]float64{{1, 2}, {2, 1}, {3, 3}}, ref); hv != 8 {
		t.Fatalf("dominated point changed hv: %v, want 8", hv)
	}
	// Points beyond the reference clip to zero contribution.
	if hv := Hypervolume([][]float64{{5, 5}}, ref); hv != 0 {
		t.Fatalf("out-of-reference hv = %v, want 0", hv)
	}
	// 3-D: unit-dominated cube corner.
	if hv := Hypervolume([][]float64{{1, 1, 1}}, []float64{2, 2, 2}); hv != 1 {
		t.Fatalf("3-D hv = %v, want 1", hv)
	}
}

// TestHypervolumeMonotone: adding a non-dominated point never lowers
// the hypervolume (quick.Check).
func TestHypervolumeMonotone(t *testing.T) {
	ref := []float64{1000, 1000, 1000}
	property := func(a, b [3]float64) bool {
		va, vb := vec3(a), vec3(b)
		base := Hypervolume([][]float64{va}, ref)
		grown := Hypervolume([][]float64{va, vb}, ref)
		return grown >= base-1e-9
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatalf("hypervolume monotonicity: %v", err)
	}
}

// TestVectorObjective: construction, naming, fingerprints, defaults.
func TestVectorObjective(t *testing.T) {
	if _, err := NewVectorObjective(MaxAPL{}); err == nil {
		t.Fatal("single-component vector objective accepted")
	}
	v, err := NewVectorObjective(MaxAPL{}, nil, Energy{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Name(), "vec(max-APL,max-APL,energy)"; got != want {
		t.Fatalf("Name = %q, want %q (nil resolves to default)", got, want)
	}
	def := DefaultVectorObjective()
	if got, want := def.Fingerprint(), "vec(maxapl,devapl,energy)"; got != want {
		t.Fatalf("default fingerprint = %q, want %q", got, want)
	}
	if def.Dim() != 3 || def.IsZero() {
		t.Fatalf("default vector objective malformed: dim %d", def.Dim())
	}
	var zero VectorObjective
	if got := VectorOrDefault(zero).Fingerprint(); got != def.Fingerprint() {
		t.Fatalf("VectorOrDefault(zero) = %q, want default", got)
	}
}

// TestVectorScorerAgreesWithComponents: the batched scorer matches
// per-component ObjectiveValue bit-for-bit.
func TestVectorScorerAgreesWithComponents(t *testing.T) {
	p := objTestProblem(t)
	sc := p.VectorScorer(DefaultVectorObjective())
	rng := stats.NewRand(3)
	out := make([]float64, sc.Dim())
	for trial := 0; trial < 20; trial++ {
		m := RandomMapping(p.N(), rng)
		sc.Score(m, out)
		for i, o := range DefaultVectorObjective().Components() {
			if want := p.ObjectiveValue(m, o); out[i] != want {
				t.Fatalf("component %d (%s): scorer %v != ObjectiveValue %v", i, o.Name(), out[i], want)
			}
		}
	}
}

// TestEnergyObjective: energy is non-negative, consistent between the
// Value and ValueWith paths, and strictly order-equivalent to total
// latency (the documented consequence of the numerator-only domain).
func TestEnergyObjective(t *testing.T) {
	p := objTestProblem(t)
	rng := stats.NewRand(9)
	num := make([]float64, p.NumApps())
	e := Energy{}
	type pair struct{ energy, gapl float64 }
	var pairs []pair
	for trial := 0; trial < 40; trial++ {
		m := RandomMapping(p.N(), rng)
		p.Numerators(m, num)
		got := e.Value(p, num)
		if got < 0 {
			t.Fatalf("negative energy %v", got)
		}
		if with := e.ValueWith(p, num, nil, nil); with != got {
			t.Fatalf("ValueWith %v != Value %v", with, got)
		}
		pairs = append(pairs, pair{got, (GAPL{}).Value(p, num)})
	}
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if (a.energy < b.energy) != (a.gapl < b.gapl) && a.energy != b.energy {
			t.Fatalf("energy ordering diverged from total latency: %+v vs %+v", a, b)
		}
	}
}

// TestEnergyParseAndFingerprint: the spelling round-trips and custom
// parameters change the fingerprint.
func TestEnergyParseAndFingerprint(t *testing.T) {
	o, err := ParseObjective("energy")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.(Energy); !ok {
		t.Fatalf("ParseObjective(energy) = %T", o)
	}
	if got := (Energy{}).Fingerprint(); got != "energy" {
		t.Fatalf("default fingerprint %q", got)
	}
	custom := Energy{}
	custom.Params.Link = 99
	custom.Params.ClockGHz = 1
	if got := custom.Fingerprint(); got == "energy" {
		t.Fatal("custom parameters share the default fingerprint")
	}
	w, err := ParseObjective("weighted:max=1,energy=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if w.(Weighted).Energy != 0.5 {
		t.Fatalf("weighted energy term lost: %+v", w)
	}
}
