package core

import (
	"math"
	"testing"

	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

func TestSolveSAMValidation(t *testing.T) {
	p := figure5Problem(t)
	tiles := []mesh.Tile{0, 1, 2, 3}
	if _, _, err := p.SolveSAM(0, 0, nil); err == nil {
		t.Error("empty range accepted")
	}
	if _, _, err := p.SolveSAM(0, 4, tiles[:2]); err == nil {
		t.Error("tile/thread count mismatch accepted")
	}
	if _, _, err := p.SolveSAM(-1, 3, tiles); err == nil {
		t.Error("negative lo accepted")
	}
	if _, _, err := p.SolveSAM(13, 17, tiles); err == nil {
		t.Error("hi beyond N accepted")
	}
}

// TestSAMOptimalOnFigure5 checks that SAM places the heaviest thread on
// the lowest-latency tile: for one Figure 5 application given a corner,
// two edges, and a center of the 4x4 mesh, the optimal APL is 10.3375.
func TestSAMOptimalOnFigure5(t *testing.T) {
	p := figure5Problem(t)
	msh := p.Model().Mesh()
	tiles := []mesh.Tile{
		msh.TileAt(0, 0), // corner
		msh.TileAt(0, 1), // edge
		msh.TileAt(1, 0), // edge
		msh.TileAt(1, 1), // center
	}
	assign, cost, err := p.SolveSAM(0, 4, tiles)
	if err != nil {
		t.Fatal(err)
	}
	apl := cost / p.AppWeight(0)
	if math.Abs(apl-10.3375) > 1e-9 {
		t.Errorf("SAM APL = %v, want 10.3375", apl)
	}
	// Heaviest thread (index 3, rate 0.4) must get the center tile.
	if assign[3] != msh.TileAt(1, 1) {
		t.Errorf("heaviest thread on tile %v, want center", assign[3])
	}
	// Lightest thread must get the corner.
	if assign[0] != msh.TileAt(0, 0) {
		t.Errorf("lightest thread on tile %v, want corner", assign[0])
	}
}

// TestSAMBeatsBruteForceNever verifies SAM optimality against exhaustive
// search on random sub-instances.
func TestSAMMatchesBruteForce(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	rng := stats.NewRand(77)
	for trial := 0; trial < 30; trial++ {
		w := &workload.Workload{Name: "bf", Apps: []workload.Application{{
			Name: "a",
			Threads: []workload.Thread{
				{CacheRate: rng.Float64() * 10, MemRate: rng.Float64()},
				{CacheRate: rng.Float64() * 10, MemRate: rng.Float64()},
				{CacheRate: rng.Float64() * 10, MemRate: rng.Float64()},
				{CacheRate: rng.Float64() * 10, MemRate: rng.Float64()},
				{CacheRate: rng.Float64() * 10, MemRate: rng.Float64()},
			},
		}}}
		if err := w.PadTo(16); err != nil {
			t.Fatal(err)
		}
		p := MustNewProblem(lm, w)
		// Random distinct candidate tiles.
		perm := rng.Perm(16)
		tiles := make([]mesh.Tile, 5)
		for i := range tiles {
			tiles[i] = mesh.Tile(perm[i])
		}
		_, cost, err := p.SolveSAM(0, 5, tiles)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceSAM(p, 0, 5, tiles)
		if math.Abs(cost-want) > 1e-9 {
			t.Fatalf("trial %d: SAM cost %v, brute force %v", trial, cost, want)
		}
	}
}

func bruteForceSAM(p *Problem, lo, hi int, tiles []mesh.Tile) float64 {
	n := hi - lo
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for x, y := range perm {
				s += p.ThreadCost(lo+x, tiles[y])
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestSolveSAMInto(t *testing.T) {
	p := figure5Problem(t)
	m := IdentityMapping(16)
	msh := p.Model().Mesh()
	tiles := []mesh.Tile{msh.TileAt(0, 0), msh.TileAt(0, 1), msh.TileAt(1, 0), msh.TileAt(1, 1)}
	apl, err := p.SolveSAMInto(m, 0, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(apl-10.3375) > 1e-9 {
		t.Errorf("APL = %v", apl)
	}
	// The mapping now holds the assignment for app 0's threads.
	seen := map[mesh.Tile]bool{}
	for j := 0; j < 4; j++ {
		seen[m[j]] = true
	}
	for _, tl := range tiles {
		if !seen[tl] {
			t.Errorf("tile %v not assigned", tl)
		}
	}
}

func TestReoptimizeAppNeverWorsens(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	w := workload.MustConfig("C1")
	p := MustNewProblem(lm, w)
	rng := stats.NewRand(123)
	for trial := 0; trial < 10; trial++ {
		m := RandomMapping(64, rng)
		before := make([]float64, p.NumApps())
		for i := range before {
			before[i] = p.APL(m, i)
		}
		for i := 0; i < p.NumApps(); i++ {
			if err := p.ReoptimizeApp(m, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Validate(64); err != nil {
			t.Fatal(err)
		}
		for i := range before {
			after := p.APL(m, i)
			if after > before[i]+1e-9 {
				t.Fatalf("app %d worsened: %v -> %v", i, before[i], after)
			}
		}
	}
}
