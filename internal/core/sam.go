package core

import (
	"fmt"

	"obm/internal/hungarian"
	"obm/internal/mesh"
)

// SolveSAM solves the Single Application Mapping problem of Section IV.A
// (Algorithm 1): given the flattened thread range [lo, hi) of one
// application and an equally-sized set of candidate tiles, it finds the
// assignment of threads to those tiles that minimizes the application's
// total packet latency (equivalently its APL, since the denominator is
// fixed).
//
// The returned slice assign has length hi-lo; assign[x] is the tile given
// to thread lo+x. The returned cost is the application's total packet
// latency (the APL numerator), i.e. sum of c_j*TC + m_j*TM over the
// application; divide by Problem.AppWeight to obtain the APL.
func (p *Problem) SolveSAM(lo, hi int, tiles []mesh.Tile) (assign []mesh.Tile, cost float64, err error) {
	var s SAMSolver
	s.p = p
	rowToCol, total, err := s.solve(lo, hi, tiles)
	if err != nil {
		return nil, 0, err
	}
	assign = make([]mesh.Tile, len(tiles))
	for x, y := range rowToCol {
		assign[x] = tiles[y]
	}
	return assign, total, nil
}

// SAMSolver solves repeated SAM instances for one Problem, reusing the
// cost matrix and Hungarian scratch across solves — the per-call
// allocations of Problem.SolveSAMInto amortize to zero, which matters
// for mappers that SAM-polish on a hot path (sort-select-swap runs two
// solves per application per pass). Results are bit-identical to the
// Problem methods: the buffers are reused, the float operations and
// their order are not changed. Not safe for concurrent use; give each
// goroutine its own.
type SAMSolver struct {
	p     *Problem
	hs    hungarian.Solver
	costM [][]float64
	flat  []float64
	tiles []mesh.Tile
}

// NewSAMSolver returns a scratch-reusing SAM solver for p.
func (p *Problem) NewSAMSolver() *SAMSolver {
	return &SAMSolver{p: p}
}

// solve runs Algorithm 1 for thread range [lo, hi) over tiles and
// returns the Hungarian row-to-column assignment (owned by the solver,
// overwritten by the next call) and the total packet latency.
func (s *SAMSolver) solve(lo, hi int, tiles []mesh.Tile) ([]int, float64, error) {
	p := s.p
	na := hi - lo
	if na <= 0 || lo < 0 || hi > p.N() {
		return nil, 0, fmt.Errorf("core: SAM thread range [%d,%d) invalid", lo, hi)
	}
	if len(tiles) != na {
		return nil, 0, fmt.Errorf("core: SAM got %d tiles for %d threads", len(tiles), na)
	}
	// Step 1 (Algorithm 1): build the cost matrix cost[j][k] (eq. 13).
	if cap(s.flat) < na*na {
		s.flat = make([]float64, na*na)
	}
	if cap(s.costM) < na {
		s.costM = make([][]float64, na)
	}
	flat := s.flat[:na*na]
	costM := s.costM[:na]
	for x := 0; x < na; x++ {
		row := flat[x*na : (x+1)*na]
		j := lo + x
		for y, t := range tiles {
			row[y] = p.ThreadCost(j, t)
		}
		costM[x] = row
	}
	// Step 2: Hungarian assignment.
	rowToCol, total, err := s.hs.Solve(costM)
	if err != nil {
		return nil, 0, fmt.Errorf("core: SAM: %w", err)
	}
	return rowToCol, total, nil
}

// SolveInto is Problem.SolveSAMInto with reused scratch: it solves SAM
// for application appIdx over tiles, writes the assignment into m, and
// returns the application's resulting APL.
func (s *SAMSolver) SolveInto(m Mapping, appIdx int, tiles []mesh.Tile) (float64, error) {
	p := s.p
	lo, hi := p.AppThreads(appIdx)
	rowToCol, cost, err := s.solve(lo, hi, tiles)
	if err != nil {
		return 0, err
	}
	for x, y := range rowToCol {
		m[lo+x] = tiles[y]
	}
	if w := p.AppWeight(appIdx); w > 0 {
		return cost / w, nil
	}
	return 0, nil
}

// ReoptimizeApp is Problem.ReoptimizeApp with reused scratch.
func (s *SAMSolver) ReoptimizeApp(m Mapping, appIdx int) error {
	lo, hi := s.p.AppThreads(appIdx)
	if cap(s.tiles) < hi-lo {
		s.tiles = make([]mesh.Tile, hi-lo)
	}
	tiles := s.tiles[:hi-lo]
	for x := range tiles {
		tiles[x] = m[lo+x]
	}
	_, err := s.SolveInto(m, appIdx, tiles)
	return err
}

// SolveSAMInto solves SAM for application i and writes the resulting
// assignment into mapping m (which must have length N). It returns the
// application's resulting APL.
func (p *Problem) SolveSAMInto(m Mapping, appIdx int, tiles []mesh.Tile) (float64, error) {
	var s SAMSolver
	s.p = p
	return s.SolveInto(m, appIdx, tiles)
}

// ReoptimizeApp re-runs SAM for application i over the tiles it currently
// occupies in m, improving (never worsening) its APL in place. This is
// the final polish step of the sort-select-swap algorithm and is also
// used after sliding-window swaps.
func (p *Problem) ReoptimizeApp(m Mapping, appIdx int) error {
	var s SAMSolver
	s.p = p
	return s.ReoptimizeApp(m, appIdx)
}
