package core

import (
	"fmt"

	"obm/internal/hungarian"
	"obm/internal/mesh"
)

// SolveSAM solves the Single Application Mapping problem of Section IV.A
// (Algorithm 1): given the flattened thread range [lo, hi) of one
// application and an equally-sized set of candidate tiles, it finds the
// assignment of threads to those tiles that minimizes the application's
// total packet latency (equivalently its APL, since the denominator is
// fixed).
//
// The returned slice assign has length hi-lo; assign[x] is the tile given
// to thread lo+x. The returned cost is the application's total packet
// latency (the APL numerator), i.e. sum of c_j*TC + m_j*TM over the
// application; divide by Problem.AppWeight to obtain the APL.
func (p *Problem) SolveSAM(lo, hi int, tiles []mesh.Tile) (assign []mesh.Tile, cost float64, err error) {
	na := hi - lo
	if na <= 0 || lo < 0 || hi > p.N() {
		return nil, 0, fmt.Errorf("core: SAM thread range [%d,%d) invalid", lo, hi)
	}
	if len(tiles) != na {
		return nil, 0, fmt.Errorf("core: SAM got %d tiles for %d threads", len(tiles), na)
	}
	// Step 1 (Algorithm 1): build the cost matrix cost[j][k] (eq. 13).
	costM := make([][]float64, na)
	flat := make([]float64, na*na)
	for x := 0; x < na; x++ {
		row := flat[x*na : (x+1)*na]
		j := lo + x
		for y, t := range tiles {
			row[y] = p.ThreadCost(j, t)
		}
		costM[x] = row
	}
	// Step 2: Hungarian assignment.
	rowToCol, total, err := hungarian.Solve(costM)
	if err != nil {
		return nil, 0, fmt.Errorf("core: SAM: %w", err)
	}
	assign = make([]mesh.Tile, na)
	for x, y := range rowToCol {
		assign[x] = tiles[y]
	}
	return assign, total, nil
}

// SolveSAMInto solves SAM for application i and writes the resulting
// assignment into mapping m (which must have length N). It returns the
// application's resulting APL.
func (p *Problem) SolveSAMInto(m Mapping, appIdx int, tiles []mesh.Tile) (float64, error) {
	lo, hi := p.AppThreads(appIdx)
	assign, cost, err := p.SolveSAM(lo, hi, tiles)
	if err != nil {
		return 0, err
	}
	for x, t := range assign {
		m[lo+x] = t
	}
	if w := p.AppWeight(appIdx); w > 0 {
		return cost / w, nil
	}
	return 0, nil
}

// ReoptimizeApp re-runs SAM for application i over the tiles it currently
// occupies in m, improving (never worsening) its APL in place. This is
// the final polish step of the sort-select-swap algorithm and is also
// used after sliding-window swaps.
func (p *Problem) ReoptimizeApp(m Mapping, appIdx int) error {
	lo, hi := p.AppThreads(appIdx)
	tiles := make([]mesh.Tile, hi-lo)
	for x := range tiles {
		tiles[x] = m[lo+x]
	}
	_, err := p.SolveSAMInto(m, appIdx, tiles)
	return err
}
