// Package core defines the On-chip latency Balanced Mapping (OBM) problem
// of the paper (Section III.B) and its building blocks: the thread-to-tile
// Mapping, the per-application Average Packet Latency (APL) metrics, and
// the polynomial-time Single Application Mapping (SAM) solver of
// Section IV.A.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// Problem is a fully-specified OBM instance: a latency model over N tiles
// and a workload with exactly N threads (pad the workload first if it is
// smaller — see workload.PadTo). Problems are immutable after
// construction and safe for concurrent use by multiple mappers.
type Problem struct {
	lm *model.LatencyModel
	w  *workload.Workload
	// capacity is the number of threads a tile hosts (1 in the paper;
	// >1 implements the generalization its Section III.B footnote leaves
	// open). The mapping domain becomes "slots": slot s lives on tile
	// s/capacity, and every latency lookup translates through that.
	capacity int

	// Flattened, cached views of the workload.
	cache      []float64 // c_j
	mem        []float64 // m_j
	boundaries []int     // N_0..N_A
	appOf      []int     // thread -> application index
	appWeight  []float64 // per-application sum of (c_j+m_j)
	totalRate  float64   // sum over all threads of (c_j+m_j)
	totalCache float64   // sum over all threads of c_j
	totalMem   float64   // sum over all threads of m_j

	// fingerprint caches Fingerprint()'s content hash (computed once;
	// Problems are immutable after construction).
	fpOnce sync.Once
	fp     string
}

// NewProblem validates and builds an OBM instance. The workload thread
// count must equal the tile count of the latency model.
func NewProblem(lm *model.LatencyModel, w *workload.Workload) (*Problem, error) {
	return NewProblemWithCapacity(lm, w, 1)
}

// NewProblemWithCapacity builds an OBM instance where every tile hosts
// capacity threads — the multi-thread-per-tile generalization the
// paper's footnote mentions but does not treat. The workload must have
// exactly tiles*capacity threads; mappings become permutations of that
// many slots, and every mapper works unchanged because slot costs are
// just replicated tile costs.
func NewProblemWithCapacity(lm *model.LatencyModel, w *workload.Workload, capacity int) (*Problem, error) {
	if lm == nil {
		return nil, fmt.Errorf("core: nil latency model")
	}
	if w == nil {
		return nil, fmt.Errorf("core: nil workload")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: capacity %d must be >= 1", capacity)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if got, want := w.NumThreads(), lm.NumTiles()*capacity; got != want {
		return nil, fmt.Errorf("core: workload %q has %d threads for %d slots (%d tiles x capacity %d; PadTo first?)",
			w.Name, got, want, lm.NumTiles(), capacity)
	}
	p := &Problem{
		lm:         lm,
		w:          w,
		capacity:   capacity,
		cache:      w.CacheRates(),
		mem:        w.MemRates(),
		boundaries: w.Boundaries(),
	}
	n := w.NumThreads()
	p.appOf = make([]int, n)
	p.appWeight = make([]float64, w.NumApps())
	for i := 0; i < w.NumApps(); i++ {
		for j := p.boundaries[i]; j < p.boundaries[i+1]; j++ {
			p.appOf[j] = i
			p.appWeight[i] += p.cache[j] + p.mem[j]
			p.totalCache += p.cache[j]
			p.totalMem += p.mem[j]
		}
		p.totalRate += p.appWeight[i]
	}
	return p, nil
}

// MustNewProblem is NewProblem but panics on error.
func MustNewProblem(lm *model.LatencyModel, w *workload.Workload) *Problem {
	p, err := NewProblem(lm, w)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the number of threads (== slots == tiles x capacity).
func (p *Problem) N() int { return len(p.cache) }

// Capacity returns the number of threads per tile.
func (p *Problem) Capacity() int { return p.capacity }

// TileOfSlot returns the physical tile hosting slot s.
func (p *Problem) TileOfSlot(s mesh.Tile) mesh.Tile {
	return mesh.Tile(int(s) / p.capacity)
}

// TC returns the shared-cache latency of slot s (its tile's TC).
func (p *Problem) TC(s mesh.Tile) float64 { return p.lm.TC(p.TileOfSlot(s)) }

// TM returns the memory latency of slot s (its tile's TM).
func (p *Problem) TM(s mesh.Tile) float64 { return p.lm.TM(p.TileOfSlot(s)) }

// NumApps returns the number of applications A.
func (p *Problem) NumApps() int { return len(p.appWeight) }

// Model returns the latency model.
func (p *Problem) Model() *model.LatencyModel { return p.lm }

// Workload returns the workload.
func (p *Problem) Workload() *workload.Workload { return p.w }

// CacheRate returns c_j of flattened thread j.
func (p *Problem) CacheRate(j int) float64 { return p.cache[j] }

// MemRate returns m_j of flattened thread j.
func (p *Problem) MemRate(j int) float64 { return p.mem[j] }

// AppOfThread returns the application index owning flattened thread j.
func (p *Problem) AppOfThread(j int) int { return p.appOf[j] }

// AppThreads returns the half-open flattened thread range [lo, hi) of
// application i.
func (p *Problem) AppThreads(i int) (lo, hi int) {
	return p.boundaries[i], p.boundaries[i+1]
}

// AppWeight returns the total request rate of application i (the APL
// denominator of eq. 5).
func (p *Problem) AppWeight(i int) float64 { return p.appWeight[i] }

// TotalRate returns the chip-wide total request rate (the g-APL
// denominator).
func (p *Problem) TotalRate() float64 { return p.totalRate }

// TotalCacheRate returns the chip-wide shared-cache request rate
// (sum of c_j over every thread).
func (p *Problem) TotalCacheRate() float64 { return p.totalCache }

// TotalMemRate returns the chip-wide memory request rate (sum of m_j
// over every thread).
func (p *Problem) TotalMemRate() float64 { return p.totalMem }

// ThreadCost returns the total packet latency contributed by thread j
// when placed on slot t: c_j*TC + m_j*TM of the slot's tile (eq. 13).
func (p *Problem) ThreadCost(j int, t mesh.Tile) float64 {
	return p.lm.Cost(p.cache[j], p.mem[j], mesh.Tile(int(t)/p.capacity))
}

// Fingerprint returns a stable content key for the instance: two
// Problems with the same mesh geometry, capacity, per-tile latencies,
// thread rates, and application boundaries share a fingerprint even
// when built independently. The scenario artifact cache keys shared
// mapper invocations on it, so the hash covers everything a Mapper or
// Evaluate can observe and nothing else (names and construction order
// do not matter). Computed once and cached; Problems are immutable.
func (p *Problem) Fingerprint() string {
	p.fpOnce.Do(func() {
		h := fnv.New64a()
		buf := make([]byte, 8)
		wu := func(v uint64) {
			binary.LittleEndian.PutUint64(buf, v)
			h.Write(buf)
		}
		wf := func(v float64) { wu(math.Float64bits(v)) }
		msh := p.lm.Mesh()
		wu(uint64(msh.Rows()))
		wu(uint64(msh.Cols()))
		wu(uint64(p.capacity))
		for _, v := range p.lm.TCArray() {
			wf(v)
		}
		for _, v := range p.lm.TMArray() {
			wf(v)
		}
		for j := range p.cache {
			wf(p.cache[j])
			wf(p.mem[j])
		}
		for _, b := range p.boundaries {
			wu(uint64(b))
		}
		p.fp = fmt.Sprintf("p%dx%dc%d-%016x", msh.Rows(), msh.Cols(), p.capacity, h.Sum64())
	})
	return p.fp
}
