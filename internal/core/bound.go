package core

import (
	"obm/internal/hungarian"
	"obm/internal/mesh"
)

// LowerBound returns a provable lower bound on the optimal max-APL of
// the problem, computed from two relaxations (both Hungarian solves,
// O(N^3) total):
//
//  1. Per-application relaxation: an application's APL under any
//     permutation is at least its APL when it may claim the best tiles
//     of the whole chip for itself, so the optimum is at least the
//     largest of these unconstrained per-application optima.
//
//  2. Mean relaxation: the maximum of the per-application APLs is at
//     least their request-rate-weighted mean, which equals the global
//     APL; the g-APL of any mapping is at least the optimal g-APL (one
//     chip-wide assignment), so that optimum also bounds max-APL.
//
// The returned bound is the larger of the two. Experiments use it to
// report how close sort-select-swap gets to optimal without needing an
// (exponential) exact solve.
//
// The bound is specific to the default max-APL Objective: both
// relaxations argue about the largest per-application APL and say
// nothing about dev-APL, the min/max ratio, or composites (Exact
// likewise only prunes with it under the default objective). A g-APL
// lower bound is the second relaxation alone.
func (p *Problem) LowerBound() (float64, error) {
	best := 0.0
	// Relaxation 1: each application alone on the chip.
	for i := 0; i < p.NumApps(); i++ {
		w := p.AppWeight(i)
		if w == 0 {
			continue
		}
		lo, hi := p.AppThreads(i)
		na := hi - lo
		cost := make([][]float64, na)
		for x := 0; x < na; x++ {
			row := make([]float64, p.N())
			for k := 0; k < p.N(); k++ {
				row[k] = p.ThreadCost(lo+x, mesh.Tile(k))
			}
			cost[x] = row
		}
		_, total, err := hungarian.Solve(cost)
		if err != nil {
			return 0, err
		}
		if apl := total / w; apl > best {
			best = apl
		}
	}
	// Relaxation 2: optimal g-APL.
	if p.totalRate > 0 {
		n := p.N()
		cost := make([][]float64, n)
		flat := make([]float64, n*n)
		for j := 0; j < n; j++ {
			row := flat[j*n : (j+1)*n]
			for k := 0; k < n; k++ {
				row[k] = p.ThreadCost(j, mesh.Tile(k))
			}
			cost[j] = row
		}
		_, total, err := hungarian.Solve(cost)
		if err != nil {
			return 0, err
		}
		if g := total / p.totalRate; g > best {
			best = g
		}
	}
	return best, nil
}
