package core

import (
	"fmt"

	"obm/internal/mesh"
	"obm/internal/stats"
)

// Mapping is a thread-to-tile permutation: Mapping[j] is the tile hosting
// flattened thread j (the paper's pi(j) = k, 0-based).
type Mapping []mesh.Tile

// Clone returns a deep copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	copy(out, m)
	return out
}

// Validate reports an error unless m is a permutation of tiles 0..N-1.
func (m Mapping) Validate(n int) error {
	if len(m) != n {
		return fmt.Errorf("core: mapping has %d entries for %d threads", len(m), n)
	}
	seen := make([]bool, n)
	for j, t := range m {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("core: thread %d mapped to out-of-range tile %d", j, t)
		}
		if seen[t] {
			return fmt.Errorf("core: tile %d assigned to multiple threads", t)
		}
		seen[t] = true
	}
	return nil
}

// IdentityMapping maps thread j to tile j.
func IdentityMapping(n int) Mapping {
	m := make(Mapping, n)
	for j := range m {
		m[j] = mesh.Tile(j)
	}
	return m
}

// RandomMapping returns a uniformly random permutation mapping drawn from
// rng.
func RandomMapping(n int, rng *stats.Rand) Mapping {
	m := make(Mapping, n)
	RandomMappingInto(m, rng)
	return m
}

// RandomMappingInto fills m with a uniformly random permutation drawn
// from rng, allocating nothing. It consumes exactly the same random
// draws as RandomMapping, so the two produce identical permutations
// from equal generator states — batch samplers (Monte Carlo) reuse one
// buffer across trials without perturbing any published stream.
func RandomMappingInto(m Mapping, rng *stats.Rand) {
	for j := range m {
		m[j] = mesh.Tile(j)
	}
	rng.Shuffle(len(m), func(i, j int) { m[i], m[j] = m[j], m[i] })
}

// InverseOn returns the tile-to-thread inverse of m (length N).
func (m Mapping) InverseOn(n int) []int {
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for j, t := range m {
		inv[t] = j
	}
	return inv
}

// Evaluation bundles every latency metric the paper reports for one
// mapping of one problem.
type Evaluation struct {
	// APLs is the per-application average packet latency d_i (eq. 5),
	// indexed by application. Idle applications with zero total rate have
	// APL 0 and are excluded from MaxAPL and DevAPL.
	APLs []float64
	// MaxAPL is the paper's objective d_max = max_i d_i (eq. 7).
	MaxAPL float64
	// DevAPL is the population standard deviation of the APLs.
	DevAPL float64
	// GlobalAPL is the g-APL: total packet latency over total volume.
	GlobalAPL float64
	// MinMaxRatio is min_i d_i / max_i d_i, the alternative balance metric
	// discussed in Section III.A.
	MinMaxRatio float64
}

// Clone returns a deep copy of the evaluation (APLs is its only
// reference field). Cache layers hand clones to callers so a stored
// evaluation can never be corrupted through a returned slice.
func (e Evaluation) Clone() Evaluation {
	out := e
	out.APLs = append([]float64(nil), e.APLs...)
	return out
}

// Evaluate computes all latency metrics for mapping m (which must be a
// valid permutation for p; behaviour on invalid mappings is undefined —
// mappers in this repository always produce validated permutations, and
// the harness re-validates at experiment boundaries).
func (p *Problem) Evaluate(m Mapping) Evaluation {
	a := p.NumApps()
	num := make([]float64, a) // per-application total packet latency
	var totalNum float64
	for j, t := range m {
		c := p.ThreadCost(j, t)
		num[p.appOf[j]] += c
		totalNum += c
	}
	ev := Evaluation{APLs: make([]float64, a)}
	active := make([]float64, 0, a)
	for i := 0; i < a; i++ {
		if p.appWeight[i] == 0 {
			continue // idle pseudo-application
		}
		ev.APLs[i] = num[i] / p.appWeight[i]
		active = append(active, ev.APLs[i])
	}
	if len(active) > 0 {
		ev.MaxAPL = stats.MustMax(active)
		ev.DevAPL = stats.StdDev(active)
		ev.MinMaxRatio = stats.MinMaxRatio(active)
	}
	if p.totalRate > 0 {
		ev.GlobalAPL = totalNum / p.totalRate
	}
	return ev
}

// APL returns application i's average packet latency under mapping m
// without computing the full evaluation.
func (p *Problem) APL(m Mapping, i int) float64 {
	if p.appWeight[i] == 0 {
		return 0
	}
	lo, hi := p.AppThreads(i)
	var num float64
	for j := lo; j < hi; j++ {
		num += p.ThreadCost(j, m[j])
	}
	return num / p.appWeight[i]
}

// MaxAPL returns the max-APL d_max of mapping m. Unlike Evaluate it
// allocates nothing: per-application numerators accumulate in the same
// thread order (application thread ranges are contiguous), so the value
// is bit-identical to Evaluate(m).MaxAPL at a fraction of the cost —
// this is the scalar hot path of the sample-heavy mappers.
func (p *Problem) MaxAPL(m Mapping) float64 {
	var mx float64
	for i := range p.appWeight {
		w := p.appWeight[i]
		if w == 0 {
			continue
		}
		var num float64
		for j := p.boundaries[i]; j < p.boundaries[i+1]; j++ {
			num += p.ThreadCost(j, m[j])
		}
		if apl := num / w; apl > mx {
			mx = apl
		}
	}
	return mx
}

// GlobalAPL returns the g-APL of mapping m, allocation-free and
// bit-identical to Evaluate(m).GlobalAPL (the total accumulates in the
// same flat thread order).
func (p *Problem) GlobalAPL(m Mapping) float64 {
	if p.totalRate == 0 {
		return 0
	}
	var total float64
	for j, t := range m {
		total += p.ThreadCost(j, t)
	}
	return total / p.totalRate
}

// AppGrid renders the mapping as a rows x cols grid of 1-based
// application IDs, the format of the paper's Figures 4 and 8. With
// capacity > 1 a tile hosts several threads; the grid shows the
// application of the lowest slot on each tile.
func (p *Problem) AppGrid(m Mapping) [][]int {
	msh := p.lm.Mesh()
	grid := make([][]int, msh.Rows())
	for r := range grid {
		grid[r] = make([]int, msh.Cols())
	}
	for j, t := range m {
		if p.capacity > 1 && int(t)%p.capacity != 0 {
			continue
		}
		c := msh.Coord(p.TileOfSlot(t))
		grid[c.Row][c.Col] = p.appOf[j] + 1
	}
	return grid
}
