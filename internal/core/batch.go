package core

import "obm/internal/mesh"

// batchTableMaxN caps the instance size for which BatchEvaluator
// precomputes the full thread x slot cost table: N*N float64s is 32 KiB
// at the paper's N=64 and 2 MiB at N=512, past which the table stops
// fitting in cache and on-the-fly evaluation wins anyway.
const batchTableMaxN = 512

// BatchEvaluator scores many mappings of one problem against one
// objective using a structure-of-arrays layout: the thread-placement
// cost function is flattened into one contiguous cost[j*N+s] table (the
// ThreadCost(j, s) matrix), and a batch is accumulated thread-major so
// each table row is streamed once across the whole batch instead of
// being gathered per mapping. Results are bit-identical to calling
// Scorer.Score (and thus Evaluate) per mapping: for every mapping each
// application's numerator receives its thread costs in ascending thread
// order, the exact float accumulation order of Problem.Numerators, and
// the table entries are produced by the same lm.Cost calls.
//
// Not safe for concurrent use; give each goroutine its own (the table
// build cost is O(N^2) once, far below one Monte-Carlo chunk).
type BatchEvaluator struct {
	p   *Problem
	obj Objective
	// cost[j*n+s] = ThreadCost(j, s); nil above batchTableMaxN.
	cost []float64
	n    int
	// nums is the batch numerator matrix, len >= batch*NumApps, laid
	// out mapping-major.
	nums []float64
}

// BatchEvaluator returns a batch scorer for obj (nil means the default
// max-APL) on p.
func (p *Problem) BatchEvaluator(obj Objective) *BatchEvaluator {
	b := &BatchEvaluator{p: p, obj: ObjectiveOrDefault(obj), n: p.N()}
	if b.n <= batchTableMaxN {
		b.cost = make([]float64, b.n*b.n)
		for j := 0; j < b.n; j++ {
			row := b.cost[j*b.n : (j+1)*b.n]
			for s := range row {
				row[s] = p.ThreadCost(j, mesh.Tile(s))
			}
		}
	}
	return b
}

// Objective returns the objective the evaluator scores.
func (b *BatchEvaluator) Objective() Objective { return b.obj }

// EvaluateBatch scores each mapping in ms, writing the objective cost
// of ms[k] to out[k]. len(out) must be >= len(ms), and every mapping
// must be a valid permutation for the evaluator's problem (as produced
// by the mappers; no revalidation happens here). Steady-state calls
// with a stable batch size allocate nothing.
func (b *BatchEvaluator) EvaluateBatch(ms []Mapping, out []float64) {
	apps := b.p.NumApps()
	need := len(ms) * apps
	if cap(b.nums) < need {
		b.nums = make([]float64, need)
	}
	nums := b.nums[:need]
	for i := range nums {
		nums[i] = 0
	}
	if b.cost != nil {
		// Thread-major accumulation: one pass over the cost table, each
		// row hit len(ms) times while hot. Per (mapping, app) the adds
		// still arrive in ascending thread order — Numerators' order.
		for j := 0; j < b.n; j++ {
			row := b.cost[j*b.n : (j+1)*b.n]
			a := b.p.appOf[j]
			for k := range ms {
				nums[k*apps+a] += row[ms[k][j]]
			}
		}
	} else {
		for k, m := range ms {
			num := nums[k*apps : (k+1)*apps]
			for j, t := range m {
				num[b.p.appOf[j]] += b.p.ThreadCost(j, t)
			}
		}
	}
	for k := range ms {
		out[k] = b.obj.Value(b.p, nums[k*apps:(k+1)*apps])
	}
}

// Score scores a single mapping through the batch machinery (table
// path included), for callers that mix batched and one-off evaluation.
func (b *BatchEvaluator) Score(m Mapping) float64 {
	apps := b.p.NumApps()
	if cap(b.nums) < apps {
		b.nums = make([]float64, apps)
	}
	num := b.nums[:apps]
	for i := range num {
		num[i] = 0
	}
	if b.cost != nil {
		for j, t := range m {
			num[b.p.appOf[j]] += b.cost[j*b.n+int(t)]
		}
	} else {
		for j, t := range m {
			num[b.p.appOf[j]] += b.p.ThreadCost(j, t)
		}
	}
	return b.obj.Value(b.p, num)
}
