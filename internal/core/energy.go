package core

import (
	"strconv"

	"obm/internal/power"
)

// Energy is a dynamic NoC energy objective backed by
// power.EstimateEnergy: the latency-weighted flit-hop volume of a
// mapping priced at the DSENT-style per-flit-hop energy. It is the
// energy axis the multi-objective literature (Marcon et al.; the
// Pareto-Optimization Framework for Automated NoC Design) trades
// against latency, expressed inside the Objective contract so it can
// be optimized scalar-wise (-objective energy) and as a component of a
// VectorObjective.
//
// Derivation: the analytic model prices thread j on tile k at
// c_j·TC(k) + m_j·TM(k), where TC(k) = avgHops(k)·perHop +
// TdS·(N−1)/N and TM(k) = HM(k)·perHop + TdS (0 on a tile hosting a
// memory controller). Summing over all threads, the serialization
// terms contribute a mapping-independent offset TdS·((N−1)/N·ΣC +
// ΣM), so (Σ num − offset)/perHop recovers the rate-weighted hop
// volume, which power.EstimateEnergy prices in pJ. Threads landing on
// a controller tile have no TdS term in num, so the offset slightly
// over-subtracts for them; accepting that bounded, mapping-dependent
// error (clamped at zero) is what keeps Energy a pure function of the
// shared numerator domain like every other Objective — and makes it
// ordering-equivalent to total latency, which is exactly the axis the
// {max-APL, dev-APL, energy} front trades balance against.
//
// Models without hop structure (perHop == 0, e.g. NewTable instances
// with zero Params) score 0.
type Energy struct {
	// Params are the per-flit-hop energies; the zero value means
	// power.Default45nm().
	Params power.Params
}

// params resolves the zero value to the 45nm defaults.
func (e Energy) params() power.Params {
	if e.Params == (power.Params{}) {
		return power.Default45nm()
	}
	return e.Params
}

// Name implements Objective.
func (Energy) Name() string { return "energy" }

// Fingerprint implements Objective. Only the per-flit-hop energy can
// change the cost, so it is the only parameter printed; the default
// 45nm parameters keep the bare "energy" key.
func (e Energy) Fingerprint() string {
	if e.Params == (power.Params{}) || e.Params == power.Default45nm() {
		return "energy"
	}
	return "energy(pfh=" + strconv.FormatFloat(e.Params.PerFlitHop(), 'g', -1, 64) + ")"
}

// Value implements Objective.
func (e Energy) Value(p *Problem, num []float64) float64 {
	var total float64
	for _, n := range num {
		total += n
	}
	return e.cost(p, total)
}

// ValueWith implements Objective.
func (e Energy) ValueWith(p *Problem, num []float64, apps []int, trial []float64) float64 {
	var total float64
	for i := range num {
		total += effNum(num, apps, trial, i)
	}
	return e.cost(p, total)
}

// cost converts a chip-wide total packet latency into pJ.
func (e Energy) cost(p *Problem, totalNum float64) float64 {
	mp := p.lm.Params()
	perHop := mp.PerHop()
	if perHop <= 0 {
		return 0
	}
	n := float64(p.lm.NumTiles())
	offset := mp.TdS * (p.totalCache*(n-1)/n + p.totalMem)
	hops := (totalNum - offset) / perHop
	if hops < 0 {
		hops = 0
	}
	return power.EstimateEnergy(e.params(), hops)
}
