package core_test

import (
	"fmt"

	"obm/internal/core"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// Evaluate a mapping of the Figure 5 example: the identity permutation
// is far from balanced.
func ExampleProblem_Evaluate() {
	lm := model.MustNew(mesh.MustNew(4, 4), model.Figure5Params())
	p := core.MustNewProblem(lm, workload.Figure5Workload())

	ev := p.Evaluate(core.IdentityMapping(16))
	fmt.Printf("max-APL %.4f, dev-APL %.4f\n", ev.MaxAPL, ev.DevAPL)

	lb, err := p.LowerBound()
	if err != nil {
		panic(err)
	}
	fmt.Printf("no mapping can beat %.4f\n", lb)
	// Output:
	// max-APL 11.9375, dev-APL 1.0000
	// no mapping can beat 10.3375
}
