package core

import (
	"math"
	"testing"
	"testing/quick"

	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/stats"
	"obm/internal/workload"
)

// figure5Problem is the paper's Figure 5 worked example: 4x4 mesh,
// td_r=3, td_w=1, td_s=1, four 4-thread apps with cache rates 0.1..0.4.
func figure5Problem(t *testing.T) *Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(4, 4), model.Figure5Params())
	p, err := NewProblem(lm, workload.Figure5Workload())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func paperProblem(t *testing.T, cfg string) *Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(8, 8), model.DefaultParams())
	return MustNewProblem(lm, workload.MustConfig(cfg))
}

func TestNewProblemValidation(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	if _, err := NewProblem(nil, workload.Figure5Workload()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewProblem(lm, nil); err == nil {
		t.Error("nil workload accepted")
	}
	small := &workload.Workload{Apps: []workload.Application{
		{Name: "a", Threads: make([]workload.Thread, 3)},
	}}
	if _, err := NewProblem(lm, small); err == nil {
		t.Error("thread/tile mismatch accepted")
	}
	bad := &workload.Workload{}
	if _, err := NewProblem(lm, bad); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestProblemAccessors(t *testing.T) {
	p := figure5Problem(t)
	if p.N() != 16 || p.NumApps() != 4 {
		t.Fatalf("N=%d A=%d", p.N(), p.NumApps())
	}
	if p.CacheRate(0) != 0.1 || p.CacheRate(3) != 0.4 {
		t.Error("cache rates not flattened in order")
	}
	if p.MemRate(0) != 0 {
		t.Error("figure5 mem rate should be 0")
	}
	if p.AppOfThread(0) != 0 || p.AppOfThread(4) != 1 || p.AppOfThread(15) != 3 {
		t.Error("AppOfThread wrong")
	}
	lo, hi := p.AppThreads(2)
	if lo != 8 || hi != 12 {
		t.Errorf("AppThreads(2) = [%d,%d)", lo, hi)
	}
	if math.Abs(p.AppWeight(0)-1.0) > 1e-12 {
		t.Errorf("AppWeight = %v, want 1.0", p.AppWeight(0))
	}
	if math.Abs(p.TotalRate()-4.0) > 1e-12 {
		t.Errorf("TotalRate = %v, want 4.0", p.TotalRate())
	}
}

func TestMappingValidate(t *testing.T) {
	if err := IdentityMapping(4).Validate(4); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
	if err := (Mapping{0, 1}).Validate(4); err == nil {
		t.Error("short mapping accepted")
	}
	if err := (Mapping{0, 0, 2, 3}).Validate(4); err == nil {
		t.Error("duplicate tile accepted")
	}
	if err := (Mapping{0, 1, 2, 9}).Validate(4); err == nil {
		t.Error("out-of-range tile accepted")
	}
	if err := (Mapping{0, 1, 2, -1}).Validate(4); err == nil {
		t.Error("negative tile accepted")
	}
}

func TestMappingClone(t *testing.T) {
	m := IdentityMapping(4)
	c := m.Clone()
	c[0] = 3
	if m[0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestEvaluationClone(t *testing.T) {
	e := Evaluation{APLs: []float64{1.5, 2.5}, MaxAPL: 2.5, DevAPL: 0.5, GlobalAPL: 2, MinMaxRatio: 0.6}
	c := e.Clone()
	c.APLs[0] = -1
	if e.APLs[0] != 1.5 {
		t.Error("Clone shares APL storage")
	}
	if c.MaxAPL != e.MaxAPL || c.DevAPL != e.DevAPL || c.GlobalAPL != e.GlobalAPL || c.MinMaxRatio != e.MinMaxRatio {
		t.Error("Clone dropped scalar fields")
	}
	var zero Evaluation
	if got := zero.Clone(); got.APLs != nil {
		t.Error("Clone of zero evaluation should keep APLs nil")
	}
}

func TestRandomMappingValid(t *testing.T) {
	rng := stats.NewRand(5)
	for i := 0; i < 50; i++ {
		m := RandomMapping(64, rng)
		if err := m.Validate(64); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInverse(t *testing.T) {
	m := Mapping{2, 0, 1}
	inv := m.InverseOn(3)
	want := []int{1, 2, 0}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("inverse = %v, want %v", inv, want)
		}
	}
}

// TestFigure5Evaluation reproduces the paper's Figure 5 APLs through the
// full Problem/Mapping machinery.
func TestFigure5Evaluation(t *testing.T) {
	p := figure5Problem(t)
	msh := p.Model().Mesh()

	// Optimal mapping (Fig. 5a): each app gets a quadrant; within each
	// 2x2 quadrant the heaviest thread (rate 0.4) takes the center-most
	// tile, and the lightest (0.1) the corner.
	m := make(Mapping, 16)
	quadrant := [][2]int{{0, 0}, {0, 2}, {2, 0}, {2, 2}}
	for a := 0; a < 4; a++ {
		r0, c0 := quadrant[a][0], quadrant[a][1]
		// Order tiles of the quadrant from corner-most to center-most.
		corner := msh.TileAt(closer(r0, 0, 3), closer(c0, 0, 3))
		center := msh.TileAt(middle(r0), middle(c0))
		edge1 := msh.TileAt(closer(r0, 0, 3), middle(c0))
		edge2 := msh.TileAt(middle(r0), closer(c0, 0, 3))
		m[a*4+0] = corner // rate 0.1
		m[a*4+1] = edge1  // rate 0.2
		m[a*4+2] = edge2  // rate 0.3
		m[a*4+3] = center // rate 0.4
	}
	if err := m.Validate(16); err != nil {
		t.Fatal(err)
	}
	ev := p.Evaluate(m)
	for i, apl := range ev.APLs {
		if math.Abs(apl-10.3375) > 1e-9 {
			t.Errorf("app %d APL = %v, want 10.3375", i+1, apl)
		}
	}
	if math.Abs(ev.MaxAPL-10.3375) > 1e-9 {
		t.Errorf("MaxAPL = %v", ev.MaxAPL)
	}
	if ev.DevAPL > 1e-9 {
		t.Errorf("DevAPL = %v, want 0", ev.DevAPL)
	}
	if math.Abs(ev.MinMaxRatio-1) > 1e-9 {
		t.Errorf("MinMaxRatio = %v, want 1", ev.MinMaxRatio)
	}
	if math.Abs(ev.GlobalAPL-10.3375) > 1e-9 {
		t.Errorf("GlobalAPL = %v", ev.GlobalAPL)
	}

	// Equal-but-bad mapping (Fig. 5b): reverse the thread order within
	// each quadrant so the heaviest thread sits on the corner.
	bad := make(Mapping, 16)
	for a := 0; a < 4; a++ {
		bad[a*4+0] = m[a*4+3]
		bad[a*4+1] = m[a*4+2]
		bad[a*4+2] = m[a*4+1]
		bad[a*4+3] = m[a*4+0]
	}
	evBad := p.Evaluate(bad)
	for i, apl := range evBad.APLs {
		if math.Abs(apl-11.5375) > 1e-9 {
			t.Errorf("bad mapping app %d APL = %v, want 11.5375", i+1, apl)
		}
	}
	if evBad.DevAPL > 1e-9 {
		t.Errorf("bad mapping DevAPL = %v, want 0 (equally bad!)", evBad.DevAPL)
	}
}

func closer(base, lo, hi int) int {
	if base == 0 {
		return lo
	}
	return hi
}

func middle(base int) int {
	if base == 0 {
		return 1
	}
	return 2
}

func TestEvaluateMatchesAPL(t *testing.T) {
	p := paperProblem(t, "C1")
	rng := stats.NewRand(3)
	m := RandomMapping(p.N(), rng)
	ev := p.Evaluate(m)
	for i := range ev.APLs {
		if got := p.APL(m, i); math.Abs(got-ev.APLs[i]) > 1e-9 {
			t.Errorf("APL(%d) = %v, Evaluate gave %v", i, got, ev.APLs[i])
		}
	}
	if math.Abs(p.MaxAPL(m)-ev.MaxAPL) > 1e-12 {
		t.Error("MaxAPL accessor disagrees")
	}
	if math.Abs(p.GlobalAPL(m)-ev.GlobalAPL) > 1e-12 {
		t.Error("GlobalAPL accessor disagrees")
	}
}

func TestIdleAppExcluded(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	w := &workload.Workload{Name: "partial", Apps: []workload.Application{
		{Name: "a", Threads: []workload.Thread{{CacheRate: 1}, {CacheRate: 2}}},
	}}
	if err := w.PadTo(16); err != nil {
		t.Fatal(err)
	}
	p := MustNewProblem(lm, w)
	m := IdentityMapping(16)
	ev := p.Evaluate(m)
	if ev.APLs[1] != 0 {
		t.Errorf("idle app APL = %v, want 0", ev.APLs[1])
	}
	if ev.MaxAPL != ev.APLs[0] {
		t.Error("idle app should not dominate MaxAPL")
	}
	if ev.DevAPL != 0 {
		t.Errorf("DevAPL over a single active app = %v, want 0", ev.DevAPL)
	}
}

// Property: g-APL is invariant under relabeling of which thread within an
// application holds which tile... it is NOT (threads have distinct
// rates); but the APL is invariant when two equal-rate threads of the
// same application swap tiles.
func TestEqualThreadSwapInvariance(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	w := &workload.Workload{Name: "equal", Apps: []workload.Application{
		{Name: "a", Threads: make([]workload.Thread, 8)},
		{Name: "b", Threads: make([]workload.Thread, 8)},
	}}
	for i := range w.Apps[0].Threads {
		w.Apps[0].Threads[i] = workload.Thread{CacheRate: 2, MemRate: 0.5}
		w.Apps[1].Threads[i] = workload.Thread{CacheRate: 1, MemRate: 0.25}
	}
	p := MustNewProblem(lm, w)
	rng := stats.NewRand(9)
	f := func(a, b uint8) bool {
		m := RandomMapping(16, rng)
		ev1 := p.Evaluate(m)
		// Swap two threads within app 0 (indices 0..7).
		i, j := int(a)%8, int(b)%8
		m[i], m[j] = m[j], m[i]
		ev2 := p.Evaluate(m)
		return math.Abs(ev1.MaxAPL-ev2.MaxAPL) < 1e-9 &&
			math.Abs(ev1.GlobalAPL-ev2.GlobalAPL) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppGrid(t *testing.T) {
	p := figure5Problem(t)
	m := IdentityMapping(16)
	grid := p.AppGrid(m)
	if len(grid) != 4 || len(grid[0]) != 4 {
		t.Fatal("grid shape wrong")
	}
	// Identity: threads 0-3 (app 1) on row 0, etc.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if grid[r][c] != r+1 {
				t.Fatalf("grid[%d][%d] = %d, want %d", r, c, grid[r][c], r+1)
			}
		}
	}
}
