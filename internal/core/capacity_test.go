package core

import (
	"math"
	"testing"

	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

// capacityProblem: 32 threads (2 apps x 16) on a 4x4 mesh with 2
// threads per tile.
func capacityProblem(t *testing.T) *Problem {
	t.Helper()
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	w := &workload.Workload{Name: "cap"}
	for a := 0; a < 2; a++ {
		app := workload.Application{Name: "a"}
		for x := 0; x < 16; x++ {
			app.Threads = append(app.Threads, workload.Thread{
				CacheRate: float64(1 + (a*16+x)%7),
				MemRate:   0.2,
			})
		}
		w.Apps = append(w.Apps, app)
	}
	p, err := NewProblemWithCapacity(lm, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCapacityValidation(t *testing.T) {
	lm := model.MustNew(mesh.MustNew(4, 4), model.DefaultParams())
	w := workload.Figure5Workload() // 16 threads
	if _, err := NewProblemWithCapacity(lm, w, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewProblemWithCapacity(lm, w, 2); err == nil {
		t.Error("16 threads for 32 slots accepted")
	}
	p, err := NewProblemWithCapacity(lm, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 1 {
		t.Error("capacity not recorded")
	}
}

func TestCapacitySlotGeometry(t *testing.T) {
	p := capacityProblem(t)
	if p.N() != 32 || p.Capacity() != 2 {
		t.Fatalf("N=%d capacity=%d", p.N(), p.Capacity())
	}
	// Slots 0 and 1 live on tile 0; slots 30 and 31 on tile 15.
	if p.TileOfSlot(0) != 0 || p.TileOfSlot(1) != 0 {
		t.Error("slots 0/1 should be tile 0")
	}
	if p.TileOfSlot(31) != 15 {
		t.Errorf("slot 31 on tile %d, want 15", p.TileOfSlot(31))
	}
	// Both slots of one tile share TC/TM.
	for s := 0; s < 32; s += 2 {
		if p.TC(mesh.Tile(s)) != p.TC(mesh.Tile(s+1)) {
			t.Fatalf("slots %d/%d differ in TC", s, s+1)
		}
		if p.TM(mesh.Tile(s)) != p.TM(mesh.Tile(s+1)) {
			t.Fatalf("slots %d/%d differ in TM", s, s+1)
		}
	}
	// Slot TC equals the underlying tile's model TC.
	lm := p.Model()
	if p.TC(5) != lm.TC(p.TileOfSlot(5)) {
		t.Error("slot TC does not match tile TC")
	}
}

func TestCapacityThreadCostConsistent(t *testing.T) {
	p := capacityProblem(t)
	for j := 0; j < p.N(); j++ {
		for s := 0; s < p.N(); s++ {
			slot := mesh.Tile(s)
			want := p.CacheRate(j)*p.TC(slot) + p.MemRate(j)*p.TM(slot)
			if got := p.ThreadCost(j, slot); math.Abs(got-want) > 1e-12 {
				t.Fatalf("ThreadCost(%d,%d) = %v, want %v", j, s, got, want)
			}
		}
	}
}

func TestCapacityEvaluateMatchesManual(t *testing.T) {
	p := capacityProblem(t)
	m := IdentityMapping(32)
	ev := p.Evaluate(m)
	// Manual APL of app 0: threads 0..15 on slots 0..15 (tiles 0..7).
	var num, den float64
	for j := 0; j < 16; j++ {
		num += p.ThreadCost(j, m[j])
		den += p.CacheRate(j) + p.MemRate(j)
	}
	if math.Abs(ev.APLs[0]-num/den) > 1e-9 {
		t.Errorf("APL = %v, manual %v", ev.APLs[0], num/den)
	}
	if ev.MaxAPL <= 0 || ev.GlobalAPL <= 0 {
		t.Error("metrics not computed")
	}
}

func TestCapacityAppGrid(t *testing.T) {
	p := capacityProblem(t)
	grid := p.AppGrid(IdentityMapping(32))
	if len(grid) != 4 || len(grid[0]) != 4 {
		t.Fatal("grid shape wrong")
	}
	// Identity: slots 0-15 = app 1 on tiles 0-7, so rows 0-1 show app 1.
	if grid[0][0] != 1 || grid[3][3] != 2 {
		t.Errorf("grid corners = %d/%d, want 1/2", grid[0][0], grid[3][3])
	}
}

func TestCapacitySAM(t *testing.T) {
	p := capacityProblem(t)
	// SAM over the first app with slots 0..15.
	tiles := make([]mesh.Tile, 16)
	for i := range tiles {
		tiles[i] = mesh.Tile(i)
	}
	assign, cost, err := p.SolveSAM(0, 16, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 16 || cost <= 0 {
		t.Fatal("SAM failed on slotted problem")
	}
}

func TestCapacityLowerBound(t *testing.T) {
	p := capacityProblem(t)
	lb, err := p.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Error("bound should be positive")
	}
	if obj := p.MaxAPL(IdentityMapping(32)); obj < lb-1e-9 {
		t.Errorf("identity mapping %v beats the bound %v", obj, lb)
	}
}
