package scenario

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
)

// Artifact is one memoized mapper invocation: the validated mapping and
// its full evaluation on the problem it was computed for.
type Artifact struct {
	// Mapping is the mapper's validated permutation.
	Mapping core.Mapping
	// Eval is Problem.Evaluate of that mapping.
	Eval core.Evaluation
}

// clone returns an independent copy so callers can never corrupt the
// cached artifact (Mapping and Eval.APLs are slices).
func (a Artifact) clone() Artifact {
	out := Artifact{Mapping: a.Mapping.Clone(), Eval: a.Eval}
	out.Eval.APLs = append([]float64(nil), a.Eval.APLs...)
	return out
}

// entry is one cache slot. The first requester computes; done is closed
// when Mapping/Eval/err are final, and everyone else waits on it
// (singleflight).
type entry struct {
	done chan struct{}
	art  Artifact
	err  error
}

// Cache memoizes mapper invocations content-keyed by
// (Problem.Fingerprint, Mapper.Fingerprint). It is safe for concurrent
// use: simultaneous requests for the same key share one computation,
// and distinct keys compute in parallel. Both fingerprints are content
// hashes, so independently built but identical problems (every runner
// builds its own) share artifacts, and a cached result is bit-identical
// to a recomputed one because mappers are deterministic by contract.
//
// Errors are not cached: a failed or cancelled computation removes the
// slot so a later request retries (waiters that joined the failed
// flight do share its error).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	hits, misses atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// MapEval returns mapper m's validated mapping and evaluation on p,
// computing it at most once per distinct (problem, mapper) content key.
// A hit (or a shared in-flight computation) reports a skipped stage to
// the context's engine progress sink; a miss runs mapping.MapAndCheck
// and Problem.Evaluate under ctx as usual. The returned artifact is an
// independent copy — callers may mutate it freely.
func (c *Cache) MapEval(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	key := p.Fingerprint() + "|" + m.Fingerprint()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, core.Evaluation{}, fmt.Errorf("scenario: waiting for shared %s artifact: %w", m.Name(), ctx.Err())
		}
		if e.err != nil {
			return nil, core.Evaluation{}, e.err
		}
		c.hits.Add(1)
		engine.ReportSkipped(ctx, "cached:"+m.Name())
		art := e.art.clone()
		return art.Mapping, art.Eval, nil
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	mp, err := mapping.MapAndCheck(ctx, m, p)
	if err != nil {
		e.err = err
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
		return nil, core.Evaluation{}, err
	}
	e.art = Artifact{Mapping: mp, Eval: p.Evaluate(mp)}
	close(e.done)
	art := e.art.clone()
	return art.Mapping, art.Eval, nil
}

// Stats returns the cumulative hit and miss counts. Misses equal the
// number of actual mapper invocations performed through the cache.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of completed-or-in-flight artifacts held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// shared is the process-wide artifact cache every experiment runner
// routes mapper invocations through, so one `obmsim -exp all` run (and
// concurrent runners within one experiment) computes each distinct
// invocation once.
var shared atomic.Pointer[Cache]

func init() { shared.Store(NewCache()) }

// Shared returns the process-wide artifact cache.
func Shared() *Cache { return shared.Load() }

// ResetShared installs a fresh empty shared cache and returns it.
// Tests use it to measure cold-path behaviour; long-lived servers can
// use it to bound memory across unrelated batches.
func ResetShared() *Cache {
	c := NewCache()
	shared.Store(c)
	return c
}
