package scenario

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
	"obm/internal/obs"
)

// Process-wide cache metrics (every Cache instance feeds them; in
// practice one shared cache lives per process). Exported so the
// cmd/obmsim metrics block can report artifact reuse next to the NoC
// and replica counters.
var (
	mHits     = obs.Default().Counter("scenario.cache.hits")
	mMisses   = obs.Default().Counter("scenario.cache.misses")
	mInflight = obs.Default().Gauge("scenario.cache.inflight")
)

// Artifact is one memoized mapper invocation: the validated mapping and
// its full evaluation on the problem it was computed for.
type Artifact struct {
	// Mapping is the mapper's validated permutation.
	Mapping core.Mapping
	// Eval is Problem.Evaluate of that mapping.
	Eval core.Evaluation
}

// clone returns an independent copy so callers can never corrupt the
// cached artifact (Mapping and Eval.APLs are slices).
func (a Artifact) clone() Artifact {
	out := Artifact{Mapping: a.Mapping.Clone(), Eval: a.Eval}
	out.Eval.APLs = append([]float64(nil), a.Eval.APLs...)
	return out
}

// entry is one cache slot. The first requester computes; done is closed
// when Mapping/Eval/err are final, and everyone else waits on it
// (singleflight).
type entry struct {
	done chan struct{}
	art  Artifact
	err  error
}

// Cache memoizes mapper invocations content-keyed by
// (Problem.Fingerprint, Mapper.Fingerprint). It is safe for concurrent
// use: simultaneous requests for the same key share one computation,
// and distinct keys compute in parallel. Both fingerprints are content
// hashes, so independently built but identical problems (every runner
// builds its own) share artifacts, and a cached result is bit-identical
// to a recomputed one because mappers are deterministic by contract.
//
// Errors are not cached: a failed, cancelled, or panicking computation
// removes the slot so a later request retries (waiters that joined the
// failed flight do share its error).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	// hits/misses are guarded by mu (not independent atomics) so a
	// Stats snapshot is one coherent pair — hits+misses equals the
	// number of successfully served requests plus started computations,
	// never a torn mix of before/after two racing updates.
	hits, misses uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// MapEval returns mapper m's validated mapping and evaluation on p,
// computing it at most once per distinct (problem, mapper) content key.
// A hit (or a shared in-flight computation) reports a skipped stage to
// the context's engine progress sink; a miss runs mapping.MapAndCheck
// and Problem.Evaluate under ctx as usual. The returned artifact is an
// independent copy — callers may mutate it freely.
func (c *Cache) MapEval(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	key := p.Fingerprint() + "|" + m.Fingerprint()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, core.Evaluation{}, fmt.Errorf("scenario: waiting for shared %s artifact: %w", m.Name(), ctx.Err())
		}
		if e.err != nil {
			return nil, core.Evaluation{}, e.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		mHits.Inc()
		engine.ReportSkipped(ctx, "cached:"+m.Name())
		art := e.art.clone()
		return art.Mapping, art.Eval, nil
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	mMisses.Inc()
	mInflight.Add(1)
	return c.compute(ctx, key, e, p, m)
}

// compute runs the mapper for the entry this caller owns and finalizes
// it exactly once, however the computation ends — success, error, or
// panic. The deferred completion is what makes the singleflight
// panic-safe: without it a panic in the mapper (or in Evaluate) would
// leave e.done forever open, deadlocking every waiter on the key and
// permanently leaking the slot. A panic is converted into an error the
// waiters can return, the slot is evicted so a later request retries,
// and then the panic is re-raised on the owning goroutine — the
// repository's panic policy (programmer error stays loud) is preserved
// while no bystander can hang on it.
func (c *Cache) compute(ctx context.Context, key string, e *entry, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	completed := false
	defer func() {
		mInflight.Add(-1)
		if completed {
			return
		}
		r := recover()
		e.err = fmt.Errorf("scenario: computing %s artifact panicked: %v", m.Name(), r)
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
		if r != nil {
			panic(r)
		}
	}()
	mp, err := mapping.MapAndCheck(ctx, m, p)
	if err != nil {
		e.err = err
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
		completed = true
		return nil, core.Evaluation{}, err
	}
	e.art = Artifact{Mapping: mp, Eval: p.Evaluate(mp)}
	close(e.done)
	completed = true
	art := e.art.clone()
	return art.Mapping, art.Eval, nil
}

// Stats returns the cumulative hit and miss counts, read under one
// lock so the pair is coherent — a concurrent snapshot can never show
// a torn hits/misses mix that disagrees with the requests actually
// served. Misses equal the number of mapper invocations started
// through the cache.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of completed-or-in-flight artifacts held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// shared is the process-wide artifact cache every experiment runner
// routes mapper invocations through, so one `obmsim -exp all` run (and
// concurrent runners within one experiment) computes each distinct
// invocation once.
var shared atomic.Pointer[Cache]

func init() { shared.Store(NewCache()) }

// Shared returns the process-wide artifact cache.
func Shared() *Cache { return shared.Load() }

// ResetShared installs a fresh empty shared cache and returns it.
// Tests use it to measure cold-path behaviour; long-lived servers can
// use it to bound memory across unrelated batches.
func ResetShared() *Cache {
	c := NewCache()
	shared.Store(c)
	return c
}
