package scenario

import (
	"context"
	"fmt"
	"sync/atomic"

	"obm/internal/artifact"
	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
)

// Cache is the mapper-facing adapter over the two-tier artifact store
// (internal/artifact): it translates a (Problem, Mapper) pair into a
// canonical artifact.WorkUnit, supplies the compute callback
// (mapping.MapAndCheck + Problem.Evaluate), and reports tier-accurate
// skipped-stage progress on hits. All caching policy — singleflight,
// the optional disk tier, eviction, corruption recovery — lives in the
// store; this layer only knows how to describe and produce mapper
// artifacts.
type Cache struct {
	store *artifact.Store
}

// NewCache returns a memory-only cache (the default for tests and
// library callers that never opt into persistence).
func NewCache() *Cache { return NewCacheWith(nil) }

// NewCacheWith returns a cache over the given disk tier; nil means
// memory-only.
func NewCacheWith(disk *artifact.DiskTier) *Cache {
	return &Cache{store: artifact.NewStore(disk)}
}

// workUnit builds the canonical descriptor for one mapper invocation.
func workUnit(p *core.Problem, m mapping.Mapper) artifact.WorkUnit {
	return artifact.NewWorkUnit(p.Fingerprint(), m.Fingerprint(), mapping.ObjectiveFingerprint(m))
}

// computeFn returns the store compute callback for one invocation.
func computeFn(p *core.Problem, m mapping.Mapper) func(context.Context) (artifact.Artifact, error) {
	return func(ctx context.Context) (artifact.Artifact, error) {
		mp, err := mapping.MapAndCheck(ctx, m, p)
		if err != nil {
			return artifact.Artifact{}, err
		}
		return artifact.Artifact{Mapping: mp, Eval: p.Evaluate(mp)}, nil
	}
}

// MapEval returns mapper m's validated mapping and evaluation on p,
// computing it at most once per distinct work unit — per process via
// the singleflight memory tier, and per machine when a disk tier is
// attached. A hit reports a skipped stage naming the serving tier
// ("cached:" for memory, "disk:" for the persistent tier) to the
// context's engine progress sink; a miss runs mapping.MapAndCheck and
// Problem.Evaluate under ctx as usual. The returned artifact is an
// independent copy — callers may mutate it freely.
func (c *Cache) MapEval(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	art, src, err := c.store.Get(ctx, workUnit(p, m), computeFn(p, m))
	if err != nil {
		return nil, core.Evaluation{}, err
	}
	switch src {
	case artifact.SourceMemory:
		engine.ReportSkipped(ctx, "cached:"+m.Name())
	case artifact.SourceDisk:
		engine.ReportSkipped(ctx, "disk:"+m.Name())
	}
	return art.Mapping, art.Eval, nil
}

// setWorkUnit builds the canonical descriptor for one set-mapper
// invocation: the vector objective's fingerprint takes the objective
// slot, so set-valued artifacts never collide with scalar ones (no
// scalar objective fingerprints as "vec(...)").
func setWorkUnit(p *core.Problem, sm mapping.SetMapper) artifact.WorkUnit {
	return artifact.NewWorkUnit(p.Fingerprint(), sm.Fingerprint(), sm.Vector().Fingerprint())
}

// setComputeFn returns the store compute callback for one set-mapper
// invocation. The artifact carries the full front in Set and the
// representative (first canonical member) in Mapping/Eval, so
// point-valued consumers of the same artifact see a sensible mapping
// without knowing about fronts.
func setComputeFn(p *core.Problem, sm mapping.SetMapper) func(context.Context) (artifact.Artifact, error) {
	return func(ctx context.Context) (artifact.Artifact, error) {
		set, err := mapping.MapSetAndCheck(ctx, sm, p)
		if err != nil {
			return artifact.Artifact{}, err
		}
		rep := set.Members[0]
		a := artifact.Artifact{
			Mapping: rep.Mapping,
			Eval:    p.Evaluate(rep.Mapping),
			Set:     make([]artifact.SetMember, set.Len()),
		}
		for i, m := range set.Members {
			a.Set[i] = artifact.SetMember{Mapping: m.Mapping, Vector: m.Vector}
		}
		return a, nil
	}
}

// MapEvalSet returns set-mapper sm's validated Pareto front on p,
// cached under the same two-tier policy as MapEval: computed at most
// once per distinct work unit, keyed by (problem, mapper, vector
// objective) fingerprints, with tier-accurate skipped-stage reporting
// on hits. The returned set is an independent copy.
func (c *Cache) MapEvalSet(ctx context.Context, p *core.Problem, sm mapping.SetMapper) (core.ParetoSet, error) {
	art, src, err := c.store.Get(ctx, setWorkUnit(p, sm), setComputeFn(p, sm))
	if err != nil {
		return core.ParetoSet{}, err
	}
	switch src {
	case artifact.SourceMemory:
		engine.ReportSkipped(ctx, "cached:"+sm.Name())
	case artifact.SourceDisk:
		engine.ReportSkipped(ctx, "disk:"+sm.Name())
	}
	set := core.ParetoSet{Members: make([]core.ParetoMember, len(art.Set))}
	for i, m := range art.Set {
		set.Members[i] = core.ParetoMember{Mapping: m.Mapping, Vector: m.Vector}
	}
	if err := set.Validate(p.N()); err != nil {
		return core.ParetoSet{}, fmt.Errorf("scenario: cached front for %s invalid: %w", sm.Name(), err)
	}
	return set, nil
}

// MapEvalUncached is the explicit no-cache path for harnesses that
// measure mapper wall time: it runs the mapper and evaluation directly,
// touching neither store tier, and counts the bypass so tests can
// enforce that timing runners really skip the cache (and that cached
// runners never do). Silent cache bypasses — calling
// mapping.MapAndCheck directly from a runner — are a bug; route
// through here instead.
func (c *Cache) MapEvalUncached(ctx context.Context, p *core.Problem, m mapping.Mapper) (core.Mapping, core.Evaluation, error) {
	art, err := c.store.Bypass(ctx, computeFn(p, m))
	if err != nil {
		return nil, core.Evaluation{}, err
	}
	return art.Mapping, art.Eval, nil
}

// Stats returns the cumulative hit and miss counts of the legacy
// (hits, misses) shape: hits are requests served without computing
// (memory or disk tier), misses are compute callbacks started. Use
// StoreStats for the per-tier breakdown.
func (c *Cache) Stats() (hits, misses uint64) {
	st := c.store.Stats()
	return st.MemHits + st.DiskHits, st.Computed
}

// StoreStats returns the per-tier request accounting.
func (c *Cache) StoreStats() artifact.Stats { return c.store.Stats() }

// Store returns the underlying two-tier store.
func (c *Cache) Store() *artifact.Store { return c.store }

// Len returns the number of completed-or-in-flight artifacts held in
// the memory tier.
func (c *Cache) Len() int { return c.store.Len() }

// shared is the process-wide artifact cache every experiment runner
// routes mapper invocations through, so one `obmsim -exp all` run (and
// concurrent runners within one experiment) computes each distinct
// invocation once.
var shared atomic.Pointer[Cache]

func init() { shared.Store(NewCache()) }

// Shared returns the process-wide artifact cache.
func Shared() *Cache { return shared.Load() }

// ResetShared installs a fresh empty memory-only shared cache and
// returns it. Tests use it to measure cold-path behaviour; long-lived
// servers can use it to bound memory across unrelated batches.
func ResetShared() *Cache {
	c := NewCache()
	shared.Store(c)
	return c
}

// ConfigureShared installs a shared cache backed by a persistent disk
// tier rooted at dir with the given byte budget (maxBytes <= 0:
// unbounded), warming it from whatever artifacts earlier processes
// left there, and returns it. cmd/obmsim calls this for -cachedir; the
// memory tier starts empty either way.
func ConfigureShared(dir string, maxBytes int64) (*Cache, error) {
	disk, err := artifact.OpenDisk(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	c := NewCacheWith(disk)
	shared.Store(c)
	return c, nil
}
