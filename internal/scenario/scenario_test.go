package scenario

import (
	"context"
	"strings"
	"sync"
	"testing"

	"obm/internal/artifact"
	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
	"obm/internal/mesh"
	"obm/internal/model"
	"obm/internal/workload"
)

func testProblem(t *testing.T, cfg string) *core.Problem {
	t.Helper()
	w, err := workload.Config(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(model.MustNew(mesh.MustNew(8, 8), model.DefaultParams()), w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCacheHitReturnsIdenticalArtifact(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	m := mapping.SortSelectSwap{}

	mp1, ev1, err := c.MapEval(ctx, p, m)
	if err != nil {
		t.Fatal(err)
	}
	// A second, independently built problem with the same content must
	// hit and return the identical artifact.
	mp2, ev2, err := c.MapEval(ctx, testProblem(t, "C1"), m)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if len(mp1) != len(mp2) {
		t.Fatal("mapping lengths differ")
	}
	for i := range mp1 {
		if mp1[i] != mp2[i] {
			t.Fatalf("cached mapping differs at %d: %v vs %v", i, mp1[i], mp2[i])
		}
	}
	if ev1.MaxAPL != ev2.MaxAPL || ev1.DevAPL != ev2.DevAPL || ev1.GlobalAPL != ev2.GlobalAPL {
		t.Errorf("cached evaluation differs: %+v vs %+v", ev1, ev2)
	}
}

func TestCacheMissPerDistinctKey(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p1, p2 := testProblem(t, "C1"), testProblem(t, "C2")
	if _, _, err := c.MapEval(ctx, p1, mapping.Global{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MapEval(ctx, p2, mapping.Global{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MapEval(ctx, p1, mapping.Greedy{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits, %d misses; want 0, 3", hits, misses)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestCacheReturnsIndependentCopies(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	mp, ev, err := c.MapEval(ctx, p, mapping.Global{})
	if err != nil {
		t.Fatal(err)
	}
	mp[0], mp[1] = mp[1], mp[0]
	ev.APLs[0] = -1
	mp2, ev2, err := c.MapEval(ctx, p, mapping.Global{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp2.Validate(p.N()); err != nil {
		t.Errorf("cached mapping corrupted by caller mutation: %v", err)
	}
	if ev2.APLs[0] == -1 {
		t.Error("cached evaluation corrupted by caller mutation")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C3")
	m := mapping.MonteCarlo{Samples: 2_000, Seed: 7}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.MapEval(ctx, p, m)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if hits, misses := c.Stats(); misses != 1 || hits != callers-1 {
		t.Errorf("stats = %d hits, %d misses; want %d, 1", hits, misses, callers-1)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	// Iters <= 0 is a validation error inside the mapper.
	if _, _, err := c.MapEval(ctx, p, mapping.Annealing{Iters: -1}); err == nil {
		t.Fatal("invalid mapper accepted")
	}
	if c.Len() != 0 {
		t.Errorf("failed computation left %d entries", c.Len())
	}
	// A cancelled computation must not poison the key either.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.MapEval(cancelled, p, mapping.Global{}); err == nil {
		t.Fatal("cancelled computation succeeded")
	}
	if _, _, err := c.MapEval(ctx, p, mapping.Global{}); err != nil {
		t.Errorf("retry after cancellation failed: %v", err)
	}
}

func TestCacheHitReportsSkippedStage(t *testing.T) {
	c := NewCache()
	var mu sync.Mutex
	var skipped []string
	sink := engine.SinkFunc(func(pr engine.Progress) {
		if pr.Skipped {
			mu.Lock()
			skipped = append(skipped, pr.Stage)
			mu.Unlock()
		}
	})
	ctx := engine.WithSink(context.Background(), sink)
	p := testProblem(t, "C1")
	if _, _, err := c.MapEval(ctx, p, mapping.Global{}); err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("cold path reported skipped stages: %v", skipped)
	}
	if _, _, err := c.MapEval(ctx, p, mapping.Global{}); err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "Global") {
		t.Errorf("hit should report one skipped stage naming the mapper, got %v", skipped)
	}
}

func TestProblemFingerprintContentKeyed(t *testing.T) {
	p1, p2 := testProblem(t, "C1"), testProblem(t, "C1")
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("identical problems should share a fingerprint")
	}
	if p1.Fingerprint() == testProblem(t, "C2").Fingerprint() {
		t.Error("different workloads should not share a fingerprint")
	}
}

func TestSharedReset(t *testing.T) {
	before := Shared()
	if before == nil {
		t.Fatal("no shared cache")
	}
	fresh := ResetShared()
	if fresh == Shared() != true || fresh == before {
		t.Error("ResetShared should install a distinct fresh cache")
	}
	if h, m := fresh.Stats(); h != 0 || m != 0 {
		t.Error("fresh cache should start empty")
	}
}

func TestDefaultBudget(t *testing.T) {
	q, f := DefaultBudget(true), DefaultBudget(false)
	if !(q.RandomDraws < f.RandomDraws && q.MCSamples < f.MCSamples && q.SAIters < f.SAIters && q.SimReplicas < f.SimReplicas) {
		t.Errorf("quick budgets should be smaller: %+v vs %+v", q, f)
	}
	if f.MCSamples != 10_000 {
		t.Errorf("full MC budget %d, paper uses 10^4", f.MCSamples)
	}
}

func TestStandardMappers(t *testing.T) {
	sp := Spec{Configs: []string{"C1"}, Budget: DefaultBudget(true), Seed: 1}
	ms := sp.StandardMappers()
	if len(ms) != 4 {
		t.Fatalf("want 4 standard mappers, got %d", len(ms))
	}
	names := []string{ms[0].Name(), ms[1].Name(), ms[2].Name(), ms[3].Name()}
	want := []string{"Global", "MC(1000)", "SA(5000)", "SSS"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("mapper %d = %s, want %s", i, names[i], want[i])
		}
	}
	// Fingerprints must track the seed (it offsets MC and SA streams).
	other := Spec{Budget: DefaultBudget(true), Seed: 2}.StandardMappers()
	if ms[1].Fingerprint() == other[1].Fingerprint() || ms[2].Fingerprint() == other[2].Fingerprint() {
		t.Error("seeded mapper fingerprints should differ across spec seeds")
	}
	if ms[0].Fingerprint() != other[0].Fingerprint() {
		t.Error("Global fingerprint should not depend on the seed")
	}
}

// TestSpecWorkersInvariantKeys enforces the execution-shape contract:
// Spec.Workers flows into the parallel mappers but must never reach a
// fingerprint — and therefore never a cache key — so artifacts computed
// on different machine shapes share slots, and a warm cache serves the
// same artifact whatever -workers the run was started with.
func TestSpecWorkersInvariantKeys(t *testing.T) {
	base := Spec{Configs: []string{"C1"}, Budget: DefaultBudget(true), Seed: 1}
	ms := base.StandardMappers()
	for _, w := range []int{1, 2, 8, -1} {
		sp := base
		sp.Workers = w
		for i, m := range sp.StandardMappers() {
			if got, want := m.Fingerprint(), ms[i].Fingerprint(); got != want {
				t.Errorf("Workers=%d changes mapper %d cache key: %q != %q", w, i, got, want)
			}
		}
	}
	// The knob does reach the mappers (sanity: it isn't dropped).
	sp := base
	sp.Workers = 3
	mc := sp.StandardMappers()[1].(mapping.MonteCarlo)
	if mc.Workers != 3 {
		t.Errorf("Spec.Workers not threaded into MonteCarlo: %+v", mc)
	}
	sa := sp.StandardMappers()[2].(mapping.Annealing)
	if sa.Workers != 3 {
		t.Errorf("Spec.Workers not threaded into Annealing: %+v", sa)
	}
}

func TestCacheDistinguishesObjectives(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	def := mapping.MonteCarlo{Samples: 500, Seed: 7}
	alt := mapping.MonteCarlo{Samples: 500, Seed: 7, Objective: core.GAPL{}}
	if def.Fingerprint() == alt.Fingerprint() {
		t.Fatalf("objective missing from fingerprint: %s", def.Fingerprint())
	}
	if _, _, err := c.MapEval(ctx, p, def); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MapEval(ctx, p, alt); err != nil {
		t.Fatal(err)
	}
	// Same mapper shape, different objective: two distinct artifacts.
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Errorf("stats = %d hits, %d misses; want 0, 2", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	// And re-requesting either is a hit, not a recompute.
	if _, _, err := c.MapEval(ctx, p, alt); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("hits = %d after re-request, want 1", hits)
	}
}

func TestStandardMappersObjective(t *testing.T) {
	def := Spec{Budget: DefaultBudget(true), Seed: 1}
	alt := def
	alt.Objective = core.DevAPL{}
	ms, alts := def.StandardMappers(), alt.StandardMappers()
	if got := alts[3].Name(); got != "SSS{dev-APL}" {
		t.Errorf("SSS under dev objective named %q", got)
	}
	// Global is objective-fixed; the optimizing mappers must carry the
	// objective in their fingerprints (distinct cache keys).
	if ms[0].Fingerprint() != alts[0].Fingerprint() {
		t.Error("Global fingerprint should not depend on the objective")
	}
	for i := 1; i < 4; i++ {
		if ms[i].Fingerprint() == alts[i].Fingerprint() {
			t.Errorf("mapper %d fingerprint conflates objectives: %s", i, ms[i].Fingerprint())
		}
	}
}

// paretoQuick is a small NSGA-II shape for cache tests.
func paretoQuick(seed uint64) mapping.NSGAII {
	return mapping.NSGAII{Population: 16, Generations: 8, ArchiveSize: 8, Seed: seed}
}

func TestCacheMapEvalSetHitReturnsIdenticalFront(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	sm := paretoQuick(5)
	set1, err := c.MapEvalSet(ctx, testProblem(t, "C1"), sm)
	if err != nil {
		t.Fatal(err)
	}
	if set1.Len() < 1 {
		t.Fatal("empty front")
	}
	set2, err := c.MapEvalSet(ctx, testProblem(t, "C1"), sm)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if set1.Fingerprint() != set2.Fingerprint() {
		t.Errorf("cached front differs: %s vs %s", set1.Fingerprint(), set2.Fingerprint())
	}
	// The returned set is an independent copy: mutating it must not
	// corrupt the cached artifact.
	set2.Members[0].Mapping[0], set2.Members[0].Mapping[1] = set2.Members[0].Mapping[1], set2.Members[0].Mapping[0]
	set3, err := c.MapEvalSet(ctx, testProblem(t, "C1"), sm)
	if err != nil {
		t.Fatal(err)
	}
	if set3.Fingerprint() != set1.Fingerprint() {
		t.Error("cached front corrupted by caller mutation")
	}
}

func TestCacheMapEvalSetDistinctKeys(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	if _, err := c.MapEvalSet(ctx, p, paretoQuick(5)); err != nil {
		t.Fatal(err)
	}
	// A different seed is a different work unit; so is a scalar mapper
	// on the same problem.
	if _, err := c.MapEvalSet(ctx, p, paretoQuick(6)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.MapEval(ctx, p, mapping.SortSelectSwap{}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits, %d misses; want 0, 3", hits, misses)
	}
}

func TestCacheMapEvalSetDiskWarm(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sm := paretoQuick(5)
	disk, err := artifact.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := NewCacheWith(disk)
	set1, err := cold.MapEvalSet(ctx, testProblem(t, "C1"), sm)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory (a "second process") must
	// serve the identical front from disk without recomputing.
	disk2, err := artifact.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewCacheWith(disk2)
	set2, err := warm.MapEvalSet(ctx, testProblem(t, "C1"), sm)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.StoreStats()
	if st.Computed != 0 || st.DiskHits != 1 {
		t.Errorf("warm stats = %+v; want 0 computed, 1 disk hit", st)
	}
	if set1.Fingerprint() != set2.Fingerprint() {
		t.Errorf("disk round-trip changed the front: %s vs %s", set1.Fingerprint(), set2.Fingerprint())
	}
}

func TestSpecParetoMapper(t *testing.T) {
	sp := Spec{Budget: DefaultBudget(true), Seed: 1}
	sm := sp.ParetoMapper()
	if got := sm.Vector().Name(); got != "vec(max-APL,dev-APL,energy)" {
		t.Errorf("ParetoMapper vector = %q", got)
	}
	g, ok := sm.(mapping.NSGAII)
	if !ok {
		t.Fatalf("ParetoMapper is %T, want NSGAII", sm)
	}
	if g.Population != sp.Budget.ParetoPop || g.Generations != sp.Budget.ParetoGens {
		t.Errorf("budgets not threaded: %+v vs %+v", g, sp.Budget)
	}
	// Workers is execution shape: it must not change the cache key.
	alt := sp
	alt.Workers = 7
	if alt.ParetoMapper().Fingerprint() != sm.Fingerprint() {
		t.Error("Workers changes the Pareto mapper cache key")
	}
	// Seed does.
	alt = sp
	alt.Seed = 2
	if alt.ParetoMapper().Fingerprint() == sm.Fingerprint() {
		t.Error("seed missing from the Pareto mapper cache key")
	}
}
