package scenario

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"obm/internal/core"
	"obm/internal/mapping"
)

// faultyMapper panics on its first Map call (after releasing gate so
// the test can line up concurrent waiters on the same flight) and
// behaves like Global on every later call. Its fingerprint is fixed, so
// the retry after the panic targets the same cache key.
type faultyMapper struct {
	gate  chan struct{} // closed when Map has started and waiters may join
	boom  chan struct{} // Map panics when this closes
	calls *atomic.Int32
}

func (f *faultyMapper) Name() string        { return "Faulty" }
func (f *faultyMapper) Fingerprint() string { return "Faulty/v1" }

func (f *faultyMapper) Map(ctx context.Context, p *core.Problem) (core.Mapping, error) {
	if f.calls.Add(1) == 1 {
		close(f.gate)
		<-f.boom
		panic("mapper exploded mid-computation")
	}
	return mapping.Global{}.Map(ctx, p)
}

// TestPanickingMapperCannotDeadlockWaiters is the regression test for
// the singleflight panic-safety fix: a mapper that panics while
// concurrent MapEval callers wait on its flight must (1) propagate the
// panic on the owning goroutine, (2) fail every waiter with an error
// naming the panic instead of blocking them forever, and (3) evict the
// slot so a retry on the same key computes fresh and succeeds.
func TestPanickingMapperCannotDeadlockWaiters(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	m := &faultyMapper{gate: make(chan struct{}), boom: make(chan struct{}), calls: new(atomic.Int32)}

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.MapEval(ctx, p, m)
	}()
	<-m.gate // the flight is computing; joiners from here on wait on it

	const waiters = 4
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.MapEval(ctx, p, m)
		}(i)
	}
	// Let the waiters reach the shared flight, then blow it up.
	waitForLen := time.Now().Add(2 * time.Second)
	for c.Len() != 1 && time.Now().Before(waitForLen) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(m.boom)

	// The owner must re-panic (panic policy: programmer error stays
	// loud) and the waiters must all unwind promptly.
	select {
	case r := <-panicked:
		if r == nil {
			t.Error("owning goroutine did not re-panic")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("owning goroutine hung after mapper panic")
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters deadlocked on the panicked flight")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d got a result from a panicked computation", i)
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("waiter %d error should name the panic: %v", i, err)
		}
	}

	// The slot must be reclaimed: the same key retries and succeeds.
	if c.Len() != 0 {
		t.Fatalf("panicked flight left %d entries; slot not reclaimed", c.Len())
	}
	mp, _, err := c.MapEval(ctx, p, m)
	if err != nil {
		t.Fatalf("retry after panic failed: %v", err)
	}
	if err := mp.Validate(p.N()); err != nil {
		t.Errorf("retry returned invalid mapping: %v", err)
	}
	hits, misses := c.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (panicked attempt + retry)", misses)
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0 (no successful artifact was shared)", hits)
	}
}

// TestStatsCoherentUnderConcurrency checks the Stats pair can never
// disagree with itself: while many goroutines hammer one key, every
// snapshot must satisfy hits+misses <= served requests so far, and the
// final totals must balance exactly.
func TestStatsCoherentUnderConcurrency(t *testing.T) {
	c := NewCache()
	ctx := context.Background()
	p := testProblem(t, "C1")
	m := mapping.Global{}
	const callers = 16
	var served atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapErr atomic.Value
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h, ms := c.Stats()
				if h+ms > served.Load()+callers {
					snapErr.Store("hits+misses ran ahead of requests")
					return
				}
			}
		}
	}()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.MapEval(ctx, p, m); err == nil {
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	if e := snapErr.Load(); e != nil {
		t.Fatal(e)
	}
	h, ms := c.Stats()
	if h+ms != callers || ms != 1 {
		t.Errorf("final stats %d hits + %d misses, want %d total with 1 miss", h, ms, callers)
	}
}
