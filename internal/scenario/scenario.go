// Package scenario is the shared evaluation layer between the mapping
// algorithms and the experiment runners. The paper's Section V (and
// every extension study in this repository) evaluates the same four
// mappers over the same eight configurations again and again; this
// package makes that cheap and declarative:
//
//   - Spec declares an experiment's inputs once — which configurations
//     it covers, the sample budgets of every stochastic component, and
//     the base seed — replacing the copy-pasted scaffolding that used
//     to sit at the top of each runner;
//   - Cache adapts mapper invocations onto the two-tier artifact store
//     (internal/artifact): each invocation becomes a canonical
//     WorkUnit content-keyed by (problem fingerprint, mapper
//     fingerprint, objective fingerprint, schema version) and is
//     computed at most once per process via the singleflight memory
//     tier — and at most once per machine when a persistent disk tier
//     is attached — no matter how many experiments ask for it.
//
// The layer preserves reproducibility by construction: mappers are
// deterministic for a fixed configuration, problems are content-keyed,
// and the artifact encoding preserves float64 bits exactly, so a
// cached artifact — in-memory or read back from disk by a later
// process — is bit-identical to a recomputed one, and a cold run
// renders the same bytes as a warm one.
package scenario

import (
	"obm/internal/core"
	"obm/internal/mapping"
)

// Budget declares every stochastic sample count an experiment draws,
// in one place. The zero value is invalid; use DefaultBudget (the
// paper's Section V budgets, or the quick CI equivalents) and override
// per experiment as needed.
type Budget struct {
	// RandomDraws is the number of random mappings averaged for
	// random-baseline columns (the paper uses >10^4).
	RandomDraws int
	// MCSamples is the Monte-Carlo sample budget (paper: 10^4).
	MCSamples int
	// SAIters is the simulated-annealing iteration budget used where
	// the paper gives SA "similar runtime" to SSS; 18k iterations
	// matches SSS wall time on the reference machine (EXPERIMENTS.md).
	SAIters int
	// SimReplicas is the number of independent seeded simulator
	// replicas measurement experiments average (replica 0 reuses the
	// base seed, so one replica reproduces the unreplicated output).
	SimReplicas int
	// ParetoPop and ParetoGens are the NSGA-II population size and
	// generation budget for set-valued (Pareto-front) experiments.
	ParetoPop  int
	ParetoGens int
}

// DefaultBudget returns the paper's full budgets, or the quick-mode
// budgets used by CI and -short tests (headline shapes survive, error
// bars grow).
func DefaultBudget(quick bool) Budget {
	if quick {
		return Budget{RandomDraws: 500, MCSamples: 1_000, SAIters: 5_000, SimReplicas: 1, ParetoPop: 24, ParetoGens: 20}
	}
	return Budget{RandomDraws: 10_000, MCSamples: 10_000, SAIters: 18_000, SimReplicas: 3, ParetoPop: 64, ParetoGens: 120}
}

// Spec declares one experiment's inputs: the configurations it covers,
// the budgets of its stochastic components, and the base seed every
// derived seed offsets from.
type Spec struct {
	// Configs lists the workload configurations (C1..C8 subset) the
	// experiment runs on.
	Configs []string
	// Budget holds the experiment's sample budgets.
	Budget Budget
	// Seed is the base seed; stochastic components derive their streams
	// from fixed offsets of it.
	Seed uint64
	// Objective selects the cost the spec's optimizing mappers minimize;
	// nil is the paper's max-APL. A non-default objective flows into
	// every mapper fingerprint (and therefore every cache key), so
	// artifacts optimized under different objectives never conflate.
	Objective core.Objective
	// Workers is the execution-shape knob threaded into the parallel
	// mappers (Monte-Carlo chunking, annealing restart portfolios): 0 or
	// 1 is serial, negative selects GOMAXPROCS. It is deliberately
	// excluded from every mapper fingerprint — and therefore from every
	// cache key — so artifacts never split by machine shape
	// (TestSpecWorkersInvariantKeys enforces this). Runs that must be
	// byte-reproducible record (Seed, Workers) together.
	Workers int
	// CacheDir roots the persistent disk tier of the artifact store
	// ("" keeps the store memory-only). Like Workers it is an
	// execution-shape knob: it must never reach a mapper fingerprint or
	// artifact key, so the same artifacts are served whatever directory
	// — or no directory — a run was started with
	// (TestSpecCacheKnobsInvariantKeys enforces this).
	CacheDir string
	// CacheSizeBytes bounds the disk tier (LRU-evicted); <= 0 means
	// unbounded. Execution-shape only, like CacheDir.
	CacheSizeBytes int64
}

// ParetoMapper returns the spec's set-valued mapper: NSGA-II under
// the spec's Pareto budgets and seed, optimizing the default
// {max-APL, dev-APL, energy} vector objective. Like the scalar
// mappers, Workers never reaches it — NSGA-II has no worker knob at
// all, so fronts are structurally identical across -workers settings.
func (s Spec) ParetoMapper() mapping.SetMapper {
	return mapping.NSGAII{
		Population:  s.Budget.ParetoPop,
		Generations: s.Budget.ParetoGens,
		Seed:        s.Seed + 3,
	}
}

// StandardMappers returns the paper's four comparison algorithms
// (Section V.A) under the spec's budgets and seed: Global, Monte Carlo,
// simulated annealing, and sort-select-swap.
func (s Spec) StandardMappers() []mapping.Mapper {
	return []mapping.Mapper{
		mapping.Global{}, // objective-fixed: minimizes g-APL by construction
		mapping.MonteCarlo{Samples: s.Budget.MCSamples, Seed: s.Seed + 1, Workers: s.Workers, Objective: s.Objective},
		mapping.Annealing{Iters: s.Budget.SAIters, Seed: s.Seed + 2, Workers: s.Workers, Objective: s.Objective},
		mapping.SortSelectSwap{Objective: s.Objective},
	}
}
