package scenario

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"obm/internal/core"
	"obm/internal/engine"
	"obm/internal/mapping"
)

// TestCacheDiskIntegration drives a real mapper through two caches
// sharing a directory — a process restart in miniature. The second
// cache must serve from disk without recomputing, bit-identically.
func TestCacheDiskIntegration(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	p := testProblem(t, "C1")
	m := mapping.MonteCarlo{Samples: 500, Seed: 7}

	c1, err := ConfigureShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ResetShared()
	mp1, ev1, err := c1.MapEval(ctx, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.StoreStats(); st.Computed != 1 || st.DiskHits != 0 || st.DiskEntries != 1 {
		t.Fatalf("cold stats = %+v, want 1 computed, 1 disk entry", st)
	}

	// "Restart": a fresh cache warming the same directory, with a sink
	// watching which tier answers.
	c2, err := ConfigureShared(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var skipped []string
	sctx := engine.WithSink(ctx, engine.SinkFunc(func(pr engine.Progress) {
		if pr.Skipped {
			mu.Lock()
			skipped = append(skipped, pr.Stage)
			mu.Unlock()
		}
	}))
	mp2, ev2, err := c2.MapEval(sctx, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.StoreStats(); st.Computed != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 computed / 1 disk hit", st)
	}
	if len(skipped) != 1 || !strings.HasPrefix(skipped[0], "disk:") {
		t.Errorf("disk hit should report a disk-prefixed skipped stage, got %v", skipped)
	}
	if len(mp1) != len(mp2) {
		t.Fatal("mapping lengths differ across the disk tier")
	}
	for i := range mp1 {
		if mp1[i] != mp2[i] {
			t.Fatalf("mapping[%d] = %d via disk, %d computed", i, mp2[i], mp1[i])
		}
	}
	for i := range ev1.APLs {
		if math.Float64bits(ev1.APLs[i]) != math.Float64bits(ev2.APLs[i]) {
			t.Fatalf("APLs[%d] not bit-identical across the disk tier", i)
		}
	}
	for _, pair := range [][2]float64{
		{ev1.MaxAPL, ev2.MaxAPL}, {ev1.DevAPL, ev2.DevAPL},
		{ev1.GlobalAPL, ev2.GlobalAPL}, {ev1.MinMaxRatio, ev2.MinMaxRatio},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("evaluation scalar not bit-identical: %v vs %v", pair[0], pair[1])
		}
	}
	// A third request on the same cache is served by the promoted
	// memory copy.
	if _, _, err := c2.MapEval(ctx, p, m); err != nil {
		t.Fatal(err)
	}
	if st := c2.StoreStats(); st.MemHits != 1 {
		t.Errorf("promotion missing: %+v", st)
	}
}

func TestConfigureSharedInstallsAndRejects(t *testing.T) {
	dir := t.TempDir()
	defer ResetShared()
	c, err := ConfigureShared(filepath.Join(dir, "cache"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if Shared() != c {
		t.Error("ConfigureShared did not install the cache as shared")
	}
	// A directory path blocked by a regular file must fail loudly, not
	// degrade to memory-only.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ConfigureShared(filepath.Join(blocker, "cache"), 0); err == nil {
		t.Error("unusable cache dir accepted")
	}
	if _, err := ConfigureShared("", 0); err == nil {
		t.Error("empty cache dir accepted")
	}
}

// TestMapEvalUncachedBypassesTiers: the explicit no-cache path neither
// reads nor populates either tier, and is counted so harnesses can
// assert their timing loops really bypass.
func TestMapEvalUncachedBypassesTiers(t *testing.T) {
	c, err := ConfigureShared(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ResetShared()
	ctx := context.Background()
	p := testProblem(t, "C1")
	for i := 0; i < 2; i++ {
		if _, _, err := c.MapEvalUncached(ctx, p, mapping.Global{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.StoreStats()
	if st.Bypass != 2 || st.Computed != 0 || st.MemHits != 0 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want pure bypass traffic", st)
	}
	if c.Len() != 0 || st.DiskEntries != 0 {
		t.Errorf("bypass populated a tier: mem %d, disk %d", c.Len(), st.DiskEntries)
	}
	// Errors propagate unchanged.
	if _, _, err := c.MapEvalUncached(ctx, p, mapping.Annealing{Iters: -1}); err == nil {
		t.Error("invalid mapper accepted by the bypass path")
	}
}

// TestSpecCacheKnobsInvariantKeys enforces the execution-shape
// contract promised in the Spec docs: CacheDir and CacheSizeBytes
// configure where artifacts live, never which artifact a work unit
// resolves to — no fingerprint may move when they change.
func TestSpecCacheKnobsInvariantKeys(t *testing.T) {
	base := Spec{Configs: []string{"C1"}, Budget: DefaultBudget(true), Seed: 1}
	ms := base.StandardMappers()
	for _, tc := range []Spec{
		{CacheDir: "/tmp/a"},
		{CacheDir: "/tmp/b", CacheSizeBytes: 1 << 20},
		{CacheSizeBytes: 42},
	} {
		sp := base
		sp.CacheDir, sp.CacheSizeBytes = tc.CacheDir, tc.CacheSizeBytes
		for i, m := range sp.StandardMappers() {
			if got, want := m.Fingerprint(), ms[i].Fingerprint(); got != want {
				t.Errorf("cache knobs %+v change mapper %d key: %q != %q", tc, i, got, want)
			}
		}
	}
	// Problems built from such specs are cache-knob-invariant too: the
	// problem fingerprint depends only on platform and workload.
	p1, p2 := testProblem(t, "C1"), testProblem(t, "C1")
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("problem fingerprint unstable across builds")
	}
}

// TestObjectiveFingerprintCoversMappers pins the objective component
// of the work-unit key for each mapper family: optimizing mappers
// report their configured objective, Global is objective-fixed, and
// unknown mapper types fall back to the default objective.
func TestObjectiveFingerprintCoversMappers(t *testing.T) {
	if got := mapping.ObjectiveFingerprint(mapping.Global{}); got != (core.GAPL{}).Fingerprint() {
		t.Errorf("Global objective fingerprint = %q", got)
	}
	def := mapping.ObjectiveFingerprint(mapping.SortSelectSwap{})
	alt := mapping.ObjectiveFingerprint(mapping.SortSelectSwap{Objective: core.DevAPL{}})
	if def == alt {
		t.Error("objective change invisible to the work-unit key")
	}
	if got := mapping.ObjectiveFingerprint(mapping.MonteCarlo{Samples: 10}); got != def {
		t.Errorf("default objective differs across mapper families: %q vs %q", got, def)
	}
}
